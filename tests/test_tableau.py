"""Tests for the Aaronson-Gottesman tableau engine."""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import (
    CliffordTableau,
    CliffordTableauSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def evolve_all(circuit, qubits, seed=0):
    """Evolve dense, CH-form, and tableau states through a circuit."""
    sv = StateVectorSimulationState(qubits, seed=seed)
    ch = StabilizerChFormSimulationState(qubits, seed=seed)
    tb = CliffordTableauSimulationState(qubits, seed=seed)
    for op in circuit.all_operations():
        act_on(op, sv)
        act_on(op, ch)
        act_on(op, tb)
    return sv, ch, tb


def all_probabilities(state, n):
    return np.array(
        [
            state.probability_of([(i >> (n - 1 - j)) & 1 for j in range(n)])
            for i in range(2**n)
        ]
    )


class TestInitialState:
    def test_zero_state_stabilizers(self):
        t = CliffordTableau(3)
        assert t.stabilizer_strings() == ["+ZII", "+IZI", "+IIZ"]

    def test_basis_state_signs(self):
        t = CliffordTableau(3, initial_state=0b101)
        assert t.stabilizer_strings() == ["-ZII", "+IZI", "-IIZ"]

    def test_basis_state_probability(self):
        t = CliffordTableau(3, initial_state=0b110)
        assert t.probability_of([1, 1, 0]) == pytest.approx(1.0)
        assert t.probability_of([0, 0, 0]) == 0.0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CliffordTableau(0)

    def test_rejects_out_of_range_initial_state(self):
        with pytest.raises(ValueError):
            CliffordTableau(2, initial_state=4)


class TestSingleQubitGates:
    def test_h_creates_plus_state(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        assert t.stabilizer_strings() == ["+X"]
        assert t.probability_of([0]) == pytest.approx(0.5)
        assert t.probability_of([1]) == pytest.approx(0.5)

    def test_x_flips(self):
        t = CliffordTableau(1)
        t.apply_x(0)
        assert t.probability_of([1]) == pytest.approx(1.0)

    def test_z_phase_invisible_in_z_basis(self):
        t = CliffordTableau(1)
        t.apply_z(0)
        assert t.probability_of([0]) == pytest.approx(1.0)

    def test_s_on_plus_gives_y_eigenstate(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        t.apply_s(0)
        assert t.stabilizer_strings() == ["+Y"]

    def test_sdg_inverts_s(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        t.apply_s(0)
        t.apply_sdg(0)
        assert t.stabilizer_strings() == ["+X"]

    def test_y_equals_ixz_signs(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        t.apply_y(0)
        assert t.stabilizer_strings() == ["-X"]

    def test_hzh_is_x(self):
        a = CliffordTableau(1)
        a.apply_h(0)
        a.apply_z(0)
        a.apply_h(0)
        b = CliffordTableau(1)
        b.apply_x(0)
        assert a == b


class TestTwoQubitGates:
    def test_cx_makes_bell_pair(self):
        t = CliffordTableau(2)
        t.apply_h(0)
        t.apply_cx(0, 1)
        assert t.probability_of([0, 0]) == pytest.approx(0.5)
        assert t.probability_of([1, 1]) == pytest.approx(0.5)
        assert t.probability_of([0, 1]) == 0.0
        assert t.probability_of([1, 0]) == 0.0

    def test_cx_rejects_equal_qubits(self):
        t = CliffordTableau(2)
        with pytest.raises(ValueError):
            t.apply_cx(1, 1)

    def test_cz_symmetric(self):
        a = CliffordTableau(2)
        a.apply_h(0)
        a.apply_h(1)
        a.apply_cz(0, 1)
        b = CliffordTableau(2)
        b.apply_h(0)
        b.apply_h(1)
        b.apply_cz(1, 0)
        assert a == b

    def test_swap_exchanges_columns(self):
        t = CliffordTableau(2, initial_state=0b10)
        t.apply_swap(0, 1)
        assert t.probability_of([0, 1]) == pytest.approx(1.0)

    def test_swap_equals_three_cnots(self):
        a = CliffordTableau(2)
        a.apply_h(0)
        a.apply_s(0)
        a.apply_swap(0, 1)
        b = CliffordTableau(2)
        b.apply_h(0)
        b.apply_s(0)
        b.apply_cx(0, 1)
        b.apply_cx(1, 0)
        b.apply_cx(0, 1)
        assert a == b


class TestMeasurement:
    def test_deterministic_outcome_basis_state(self):
        t = CliffordTableau(2, initial_state=0b01)
        assert t.deterministic_outcome(0) == 0
        assert t.deterministic_outcome(1) == 1

    def test_deterministic_outcome_none_for_random(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        assert t.deterministic_outcome(0) is None

    def test_measure_collapses(self):
        rng = np.random.default_rng(7)
        t = CliffordTableau(1)
        t.apply_h(0)
        bit = t.measure(0, rng)
        assert bit in (0, 1)
        assert t.deterministic_outcome(0) == bit

    def test_measure_bell_pair_correlates(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            t = CliffordTableau(2)
            t.apply_h(0)
            t.apply_cx(0, 1)
            b0 = t.measure(0, rng)
            b1 = t.measure(1, rng)
            assert b0 == b1

    def test_measure_is_roughly_unbiased(self):
        rng = np.random.default_rng(11)
        outcomes = []
        for _ in range(400):
            t = CliffordTableau(1)
            t.apply_h(0)
            outcomes.append(t.measure(0, rng))
        assert 100 < sum(outcomes) < 300

    def test_project_forced_probabilities(self):
        t = CliffordTableau(1)
        t.apply_h(0)
        assert t.project_measurement(0, 1) == pytest.approx(0.5)
        assert t.project_measurement(0, 1) == pytest.approx(1.0)
        assert t.project_measurement(0, 0) == 0.0

    def test_probability_needs_full_bitstring(self):
        t = CliffordTableau(2)
        with pytest.raises(ValueError):
            t.probability_of([0])


class TestAgainstDense:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clifford_probabilities_match_dense(self, seed):
        n = 4
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(
            qubits, n_moments=12, random_state=seed
        )
        sv, ch, tb = evolve_all(circuit, qubits)
        dense = all_probabilities(sv, n)
        tableau = all_probabilities(tb, n)
        chform = all_probabilities(ch, n)
        np.testing.assert_allclose(tableau, dense, atol=1e-9)
        np.testing.assert_allclose(tableau, chform, atol=1e-9)

    def test_ghz_probabilities(self):
        qubits = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qubits[0]),
            cirq.CNOT.on(qubits[0], qubits[1]),
            cirq.CNOT.on(qubits[1], qubits[2]),
        )
        _, _, tb = evolve_all(circuit, qubits)
        assert tb.probability_of([0, 0, 0]) == pytest.approx(0.5)
        assert tb.probability_of([1, 1, 1]) == pytest.approx(0.5)
        assert tb.probability_of([0, 1, 0]) == 0.0


class TestSimulationState:
    def test_rejects_non_clifford(self):
        qubits = cirq.LineQubit.range(1)
        state = CliffordTableauSimulationState(qubits)
        with pytest.raises(ValueError, match="not a Clifford"):
            act_on(cirq.T.on(qubits[0]), state)

    def test_rejects_raw_unitary(self):
        state = CliffordTableauSimulationState(cirq.LineQubit.range(1))
        with pytest.raises(ValueError, match="raw unitaries"):
            state.apply_unitary(np.eye(2), [0])

    def test_rejects_channels(self):
        state = CliffordTableauSimulationState(cirq.LineQubit.range(1))
        with pytest.raises(ValueError, match="channels"):
            state.apply_channel([np.eye(2)], [0])

    def test_project_zero_probability_raises(self):
        qubits = cirq.LineQubit.range(1)
        state = CliffordTableauSimulationState(qubits)
        with pytest.raises(ValueError, match="zero"):
            state.project([0], [1])

    def test_copy_is_independent(self):
        qubits = cirq.LineQubit.range(2)
        state = CliffordTableauSimulationState(qubits)
        act_on(cirq.H.on(qubits[0]), state)
        clone = state.copy(seed=1)
        clone.tableau.apply_x(1)
        assert state.probability_of([0, 1]) == 0.0
        assert clone.probability_of([0, 1]) == pytest.approx(0.5)

    def test_measure_through_act_on(self):
        qubits = cirq.LineQubit.range(2)
        state = CliffordTableauSimulationState(qubits, seed=5)
        act_on(cirq.H.on(qubits[0]), state)
        act_on(cirq.CNOT.on(qubits[0], qubits[1]), state)
        act_on(cirq.measure(*qubits, key="m"), state)
        # Collapsed: both outcomes now deterministic and equal.
        b0 = state.tableau.deterministic_outcome(0)
        b1 = state.tableau.deterministic_outcome(1)
        assert b0 is not None and b0 == b1


class TestBglsSampling:
    def _sampler(self, qubits, seed=0):
        return Simulator(
            initial_state=CliffordTableauSimulationState(qubits),
            apply_op=lambda op, state: act_on(op, state),
            compute_probability=born.compute_probability_tableau,
            seed=seed,
        )

    def test_ghz_sampling(self):
        qubits = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qubits[0]),
            cirq.CNOT.on(qubits[0], qubits[1]),
            cirq.CNOT.on(qubits[1], qubits[2]),
            cirq.measure(*qubits, key="z"),
        )
        sim = Simulator(
            initial_state=CliffordTableauSimulationState(qubits),
            apply_op=lambda op, state: act_on(op, state),
            compute_probability=born.compute_probability_tableau,
            seed=0,
        )
        result = sim.run(circuit, repetitions=200)
        rows = {tuple(row) for row in result.measurements["z"]}
        assert rows <= {(0, 0, 0), (1, 1, 1)}
        assert len(rows) == 2

    def test_matches_chform_sampler_distribution(self):
        n = 4
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(
            qubits, n_moments=10, random_state=42
        )
        circuit.append(cirq.measure(*qubits, key="z"))
        reps = 2000
        res_tb = self._sampler(qubits, seed=1).run(circuit, repetitions=reps)
        sim_ch = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=lambda op, state: act_on(op, state),
            compute_probability=born.compute_probability_stabilizer_state,
            seed=2,
        )
        res_ch = sim_ch.run(circuit, repetitions=reps)

        def hist(res):
            h = np.zeros(2**n)
            for row in res.measurements["z"]:
                idx = int("".join(str(b) for b in row), 2)
                h[idx] += 1
            return h / reps

        tv = 0.5 * np.abs(hist(res_tb) - hist(res_ch)).sum()
        assert tv < 0.1
