"""Tests for random-circuit generators and gate substitution."""

import pytest

from repro import circuits as cirq
from repro.circuits import (
    CLIFFORD_GATE_DOMAIN,
    count_gate,
    generate_random_circuit,
    random_clifford_circuit,
    random_clifford_t_circuit,
    substitute_clifford_with_t,
    substitute_gate,
)
from repro.protocols import has_stabilizer_effect


class TestGenerateRandomCircuit:
    def test_depth_is_exact(self):
        c = generate_random_circuit(4, 17, random_state=0)
        assert c.depth() == 17

    def test_int_qubits(self):
        c = generate_random_circuit(5, 3, random_state=0)
        assert set(c.all_qubits()) <= set(cirq.LineQubit.range(5))

    def test_reproducible_with_seed(self):
        a = generate_random_circuit(4, 10, random_state=123)
        b = generate_random_circuit(4, 10, random_state=123)
        assert repr(a) == repr(b)

    def test_different_seeds_differ(self):
        a = generate_random_circuit(4, 10, random_state=1)
        b = generate_random_circuit(4, 10, random_state=2)
        assert repr(a) != repr(b)

    def test_op_density_extremes(self):
        empty = generate_random_circuit(4, 5, op_density=0.0, random_state=0)
        assert empty.num_operations() == 0
        dense = generate_random_circuit(4, 5, op_density=1.0, random_state=0)
        assert dense.num_operations() >= 5  # at least one op per moment

    def test_custom_gate_domain(self):
        c = generate_random_circuit(
            3, 20, gate_domain={cirq.H: 1}, random_state=0
        )
        assert all(op.gate == cirq.H for op in c.all_operations())

    def test_domain_too_large_for_qubits(self):
        c = generate_random_circuit(
            1, 5, gate_domain={cirq.H: 1, cirq.CNOT: 2}, random_state=0
        )
        assert all(len(op.qubits) == 1 for op in c.all_operations())

    def test_no_qubits_raises(self):
        with pytest.raises(ValueError):
            generate_random_circuit([], 5)


class TestCliffordGenerators:
    def test_clifford_circuit_is_all_clifford(self):
        c = random_clifford_circuit(5, 20, random_state=3)
        assert all(
            has_stabilizer_effect(op.gate) for op in c.all_operations()
        )
        gates = {op.gate for op in c.all_operations()}
        assert gates <= set(CLIFFORD_GATE_DOMAIN)

    def test_clifford_t_has_t_gates(self):
        c = random_clifford_t_circuit(5, 30, t_density=0.5, random_state=3)
        assert count_gate(c, cirq.T) > 0

    def test_clifford_t_zero_density_is_clifford(self):
        c = random_clifford_t_circuit(5, 20, t_density=0.0, random_state=3)
        assert count_gate(c, cirq.T) == 0


class TestSubstitution:
    def test_substitute_gate_t_to_s(self):
        c = random_clifford_t_circuit(4, 20, t_density=0.4, random_state=7)
        n_t = count_gate(c, cirq.T)
        assert n_t > 0
        swapped = substitute_gate(c, cirq.T, cirq.S)
        assert count_gate(swapped, cirq.T) == 0
        assert count_gate(swapped, cirq.S) >= n_t
        assert swapped.depth() == c.depth()

    def test_substitute_preserves_structure(self):
        c = random_clifford_t_circuit(4, 10, t_density=0.3, random_state=7)
        swapped = substitute_gate(c, cirq.T, cirq.S)
        for m1, m2 in zip(c.moments, swapped.moments):
            assert [op.qubits for op in m1] == [op.qubits for op in m2]

    def test_substitute_clifford_with_t_counts(self):
        c = random_clifford_circuit(5, 30, random_state=11)
        for k in (0, 1, 5):
            subbed = substitute_clifford_with_t(c, k, random_state=0)
            assert count_gate(subbed, cirq.T) == k

    def test_substitute_too_many_raises(self):
        c = random_clifford_circuit(2, 2, random_state=1)
        with pytest.raises(ValueError, match="substitutions"):
            substitute_clifford_with_t(c, 10_000, random_state=0)

    def test_substitution_reproducible(self):
        c = random_clifford_circuit(5, 30, random_state=11)
        a = substitute_clifford_with_t(c, 4, random_state=42)
        b = substitute_clifford_with_t(c, 4, random_state=42)
        assert repr(a) == repr(b)
