"""Property-based tests (hypothesis) for the MPS state and tensor engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.mps import MPSOptions, MPSState
from repro.protocols import act_on
from repro.states import StateVectorSimulationState
from repro.tensornet import Tensor, TensorNetwork

_ONE_QUBIT = [cirq.H, cirq.S, cirq.T, cirq.X, cirq.Y, cirq.Z]
_TWO_QUBIT = [cirq.CNOT, cirq.CZ, cirq.SWAP, cirq.ISWAP]


@st.composite
def circuit_programs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    length = draw(st.integers(min_value=0, max_value=20))
    ops = []
    for _ in range(length):
        if n >= 2 and draw(st.booleans()):
            gate = draw(st.sampled_from(_TWO_QUBIT))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append((gate, (a, b)))
        else:
            gate = draw(st.sampled_from(_ONE_QUBIT))
            ops.append((gate, (draw(st.integers(0, n - 1)),)))
    return n, ops


def _evolve(n, ops, **mps_kwargs):
    qs = cirq.LineQubit.range(n)
    sv = StateVectorSimulationState(qs)
    mps = MPSState(qs, **mps_kwargs)
    for gate, axes in ops:
        op = gate.on(*(qs[a] for a in axes))
        act_on(op, sv)
        act_on(op, mps)
    return sv, mps


@given(circuit_programs())
@settings(max_examples=80, deadline=None)
def test_untruncated_mps_is_exact(program):
    n, ops = program
    sv, mps = _evolve(n, ops)
    np.testing.assert_allclose(mps.state_vector(), sv.state_vector(), atol=1e-8)


@given(circuit_programs())
@settings(max_examples=40, deadline=None)
def test_mps_norm_is_one(program):
    n, ops = program
    _, mps = _evolve(n, ops)
    assert abs(mps.norm_squared() - 1.0) < 1e-8


@given(circuit_programs(), st.integers(min_value=0, max_value=31))
@settings(max_examples=40, deadline=None)
def test_amplitude_consistency(program, which):
    n, ops = program
    sv, mps = _evolve(n, ops)
    idx = which % (2**n)
    bits = [(idx >> (n - 1 - j)) & 1 for j in range(n)]
    assert abs(mps.amplitude_of(bits) - sv.state_vector()[idx]) < 1e-8


@given(circuit_programs())
@settings(max_examples=30, deadline=None)
def test_truncated_fidelity_bounded(program):
    """Estimated fidelity is in (0, 1] and 1 when nothing was truncated."""
    n, ops = program
    _, mps = _evolve(n, ops, options=MPSOptions(max_bond=2))
    assert 0.0 < mps.estimated_fidelity <= 1.0 + 1e-12


@given(
    st.lists(
        st.complex_numbers(
            min_magnitude=0.1, max_magnitude=2.0, allow_nan=False, allow_infinity=False
        ),
        min_size=2,
        max_size=2,
    )
)
@settings(max_examples=50, deadline=None)
def test_tensor_network_norm_matches_numpy(amps):
    vec = np.asarray(amps)
    t = Tensor(vec, ("i0",))
    assert abs(
        TensorNetwork([t]).norm_squared() - float(np.vdot(vec, vec).real)
    ) < 1e-9


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=50, deadline=None)
def test_isel_matches_indexing(rank_seed, data_seed):
    rng = np.random.default_rng(data_seed)
    shape = tuple(rng.integers(2, 4, size=rank_seed))
    inds = tuple(f"x{i}" for i in range(rank_seed))
    t = Tensor(rng.random(shape), inds)
    axis = int(rng.integers(rank_seed))
    pos = int(rng.integers(shape[axis]))
    sliced = t.isel({inds[axis]: pos})
    np.testing.assert_array_equal(sliced.data, np.take(t.data, pos, axis=axis))
