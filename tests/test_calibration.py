"""Persisted calibration table + the calibrate() bugfix regressions.

Covers the three contracts the scheduler's timing loop depends on:

* the table round-trips through its JSON file and degrades to an
  in-memory store on any filesystem problem (missing, corrupt, or
  unwritable file) — calibration may never break execution;
* ``AdaptiveScheduler.calibrate`` rejects garbage and clamps
  sub-resolution timings (the zero-seconds regression: a task faster
  than ``perf_counter``'s tick used to set ``seconds_per_cost = 0.0``
  and report every estimate as 0);
* calibrated weights reweight scheduling geometry *only* when every
  entry's (backend, width) bucket is covered, and a uniform rate never
  changes geometry at all.
"""

import json
import os

import pytest

from repro.sampler.calibration import (
    MIN_CALIBRATION_SECONDS,
    CalibrationTable,
    default_calibration_path,
    reset_shared_calibration_table,
    resolve_calibration,
    shared_calibration_table,
    width_bucket,
)
from repro.sampler.schedule import AdaptiveScheduler, BatchEntry


def entries(costs, backend=None, num_qubits=None):
    return [
        BatchEntry(i, i, None, cost, backend=backend, num_qubits=num_qubits)
        for i, cost in enumerate(costs)
    ]


def geometry(tasks):
    return [
        (t.point_index, t.chunk_index, t.num_chunks, t.repetitions)
        for t in tasks
    ]


class TestWidthBucket:
    def test_powers_of_two(self):
        assert width_bucket(1) == 1
        assert width_bucket(2) == 2
        assert width_bucket(3) == 4
        assert width_bucket(13) == 16
        assert width_bucket(16) == 16
        assert width_bucket(17) == 32

    def test_degenerate_widths_share_the_smallest_bucket(self):
        assert width_bucket(0) == 1
        assert width_bucket(-5) == 1


class TestCalibrationTable:
    def test_round_trip_through_json(self, tmp_path):
        path = str(tmp_path / "calibration.json")
        table = CalibrationTable(path=path)
        table.record("StateVectorSimulationState", 13, 2.5e-6)
        table.record("MPSState", 24, 4.0e-7)
        assert table.flush() is True
        assert os.path.exists(path)

        reloaded = CalibrationTable(path=path)
        assert reloaded.load_error is None
        assert len(reloaded) == 2
        assert reloaded.seconds_per_cost_for(
            "StateVectorSimulationState", 13
        ) == pytest.approx(2.5e-6)
        # Same power-of-two bucket: width 16 reads the width-13 sample.
        assert reloaded.seconds_per_cost_for(
            "StateVectorSimulationState", 16
        ) == pytest.approx(2.5e-6)
        assert reloaded.sample_count("MPSState", 24) == 1

    def test_missing_file_yields_empty_table(self, tmp_path):
        table = CalibrationTable(path=str(tmp_path / "nope.json"))
        assert len(table) == 0
        assert table.load_error is None

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all {",
            '{"entries": "wrong shape"}',
            '{"entries": {"B": {"8": {"seconds_per_cost": -1.0}}}}',
            '{"entries": {"B": {"8": {"seconds_per_cost": "NaN?"}}}}',
        ],
        ids=["syntax", "shape", "negative-rate", "non-numeric"],
    )
    def test_corrupt_file_falls_back_to_memory(self, tmp_path, content):
        path = tmp_path / "calibration.json"
        path.write_text(content)
        table = CalibrationTable(path=str(path))
        assert len(table) == 0
        assert table.load_error is not None
        # Still fully usable, and flush repairs the file.
        table.record("B", 8, 1e-6)
        assert table.seconds_per_cost_for("B", 8) == pytest.approx(1e-6)
        assert table.flush() is True
        assert CalibrationTable(path=str(path)).load_error is None

    def test_flush_is_atomic_and_only_writes_when_dirty(self, tmp_path):
        path = str(tmp_path / "calibration.json")
        table = CalibrationTable(path=path)
        assert table.flush() is False  # nothing recorded, nothing written
        assert not os.path.exists(path)
        table.record("B", 4, 1e-6)
        assert table.flush() is True
        assert table.flush() is False  # clean again
        data = json.load(open(path))
        assert data["entries"]["B"]["4"]["samples"] == 1
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]

    def test_flush_swallows_unwritable_directory(self, tmp_path):
        # The "directory" component is a regular file, so makedirs/mkstemp
        # fail with OSError no matter the uid (chmod tricks don't stop
        # root, and CI runs as root).
        obstacle = tmp_path / "obstacle"
        obstacle.write_text("not a directory")
        table = CalibrationTable(path=str(obstacle / "calibration.json"))
        table.record("B", 4, 1e-6)
        assert table.flush() is False  # swallowed, not raised
        assert table.seconds_per_cost_for("B", 4) == pytest.approx(1e-6)

    def test_persist_false_never_touches_disk(self, tmp_path):
        path = str(tmp_path / "calibration.json")
        table = CalibrationTable(path=path, persist=False)
        table.record("B", 4, 1e-6)
        assert table.flush() is False
        assert not os.path.exists(path)

    def test_ema_blends_samples(self):
        table = CalibrationTable(persist=False)
        table.record("B", 8, 1.0)
        table.record("B", 8, 2.0)
        # 0.7 * 1.0 + 0.3 * 2.0
        assert table.seconds_per_cost_for("B", 8) == pytest.approx(1.3)
        assert table.sample_count("B", 8) == 2

    def test_non_positive_and_non_finite_samples_rejected(self):
        table = CalibrationTable(persist=False)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            table.record("B", 8, bad)
        assert len(table) == 0

    def test_nearest_bucket_fallback_same_backend_only(self):
        table = CalibrationTable(persist=False)
        table.record("A", 4, 1e-6)
        # Unseen width of a seen backend: nearest bucket answers.
        assert table.seconds_per_cost_for("A", 32) == pytest.approx(1e-6)
        # Never across backends.
        assert table.seconds_per_cost_for("B", 4) is None
        assert table.seconds_per_cost_for(None, 4) is None
        assert table.seconds_per_cost_for("A", None) is None


class TestDefaultPathAndSharedTable:
    def test_env_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("BGLS_CALIBRATION_DIR", str(tmp_path))
        assert default_calibration_path() == str(
            tmp_path / "calibration.json"
        )

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("BGLS_CALIBRATION_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_calibration_path() == str(
            tmp_path / "bgls" / "calibration.json"
        )

    def test_shared_table_is_singleton_and_env_gated(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("BGLS_CALIBRATION_DIR", str(tmp_path))
        monkeypatch.setenv("BGLS_CALIBRATION", "0")
        reset_shared_calibration_table()
        try:
            table = shared_calibration_table()
            assert table is shared_calibration_table()
            assert table.persist is False  # BGLS_CALIBRATION=0: memory-only
        finally:
            reset_shared_calibration_table()

    def test_resolve_calibration(self):
        assert resolve_calibration(None) is None
        table = CalibrationTable(persist=False)
        assert resolve_calibration(table) is table
        reset_shared_calibration_table()
        try:
            assert resolve_calibration("auto") is shared_calibration_table()
        finally:
            reset_shared_calibration_table()
        with pytest.raises(ValueError, match="calibration"):
            resolve_calibration(42)


class TestCalibrateBugfixes:
    def test_zero_seconds_is_clamped_not_zeroed(self):
        """Regression: a sub-resolution perf_counter delta (seconds == 0)
        used to set seconds_per_cost = 0.0, reporting every
        estimated_seconds as 0."""
        scheduler = AdaptiveScheduler()
        scheduler.schedule(entries([4.0, 2.0]), repetitions=8, num_workers=1)
        scheduler.calibrate(cost=4.0, seconds=0.0)
        assert scheduler.seconds_per_cost == pytest.approx(
            MIN_CALIBRATION_SECONDS / 4.0
        )
        estimates = scheduler.last_schedule["estimated_seconds"]
        assert estimates is not None
        assert all(value > 0 for value in estimates)

    def test_non_positive_cost_and_negative_seconds_rejected(self):
        scheduler = AdaptiveScheduler()
        scheduler.calibrate(cost=0.0, seconds=1.0)
        assert scheduler.seconds_per_cost is None
        scheduler.calibrate(cost=-3.0, seconds=1.0)
        assert scheduler.seconds_per_cost is None
        scheduler.calibrate(cost=4.0, seconds=-0.1)
        assert scheduler.seconds_per_cost is None

    def test_calibrate_records_into_attached_table(self):
        table = CalibrationTable(persist=False)
        scheduler = AdaptiveScheduler(calibration=table)
        scheduler.calibrate(
            cost=10.0, seconds=2.0, backend="B", num_qubits=12
        )
        assert table.seconds_per_cost_for("B", 12) == pytest.approx(0.2)

    def test_calibrate_without_backend_skips_table(self):
        table = CalibrationTable(persist=False)
        scheduler = AdaptiveScheduler(calibration=table)
        scheduler.calibrate(cost=10.0, seconds=2.0)
        assert scheduler.seconds_per_cost == pytest.approx(0.2)
        assert len(table) == 0


class TestCalibratedScheduling:
    def test_uniform_rate_never_changes_geometry(self):
        """One backend, one width bucket: the stored rate scales every
        weight equally, so geometry is identical to the uncalibrated
        schedule — the invariant that keeps parity tests valid."""
        table = CalibrationTable(persist=False)
        table.record("B", 8, 3.7e-5)
        plain = AdaptiveScheduler().schedule(
            entries([9.0, 1.0, 1.0], backend="B", num_qubits=8),
            repetitions=32,
            num_workers=2,
        )
        calibrated_sched = AdaptiveScheduler(calibration=table)
        calibrated = calibrated_sched.schedule(
            entries([9.0, 1.0, 1.0], backend="B", num_qubits=8),
            repetitions=32,
            num_workers=2,
        )
        assert geometry(plain) == geometry(calibrated)
        assert calibrated_sched.last_schedule["calibrated"] is True
        # Calibrated weights double as seconds estimates, pre-probe.
        estimates = calibrated_sched.last_schedule["estimated_seconds"]
        assert estimates is not None
        assert all(value > 0 for value in estimates)

    def test_partial_coverage_falls_back_to_raw_costs(self):
        table = CalibrationTable(persist=False)
        table.record("A", 8, 1.0)
        mixed = [
            BatchEntry(0, 0, None, 5.0, backend="A", num_qubits=8),
            BatchEntry(1, 1, None, 5.0, backend="B", num_qubits=8),
        ]
        scheduler = AdaptiveScheduler(calibration=table)
        scheduler.schedule(mixed, repetitions=8, num_workers=2)
        assert scheduler.last_schedule["calibrated"] is False
        assert scheduler.last_schedule["estimated_seconds"] is None

    def test_cross_backend_rates_reweight_ordering(self):
        """The point of persistence: a backend measured 100x slower per
        cost unit schedules first even when raw costs say otherwise."""
        table = CalibrationTable(persist=False)
        table.record("slow", 8, 1e-3)
        table.record("fast", 8, 1e-5)
        mixed = [
            BatchEntry(0, 0, None, 10.0, backend="fast", num_qubits=8),
            BatchEntry(1, 1, None, 5.0, backend="slow", num_qubits=8),
        ]
        plain = AdaptiveScheduler(min_chunk_repetitions=8).schedule(
            mixed, repetitions=8, num_workers=1
        )
        assert [t.point_index for t in plain] == [0, 1]  # raw: 10 > 5
        calibrated = AdaptiveScheduler(
            min_chunk_repetitions=8, calibration=table
        ).schedule(mixed, repetitions=8, num_workers=1)
        # weighted: 5 * 1e-3 >> 10 * 1e-5 — the slow backend leads.
        assert [t.point_index for t in calibrated] == [1, 0]
        # Raw task costs are preserved regardless of weighting.
        assert {t.point_index: t.cost for t in calibrated} == {0: 10.0, 1: 5.0}
