"""Tests for the qubit router (repro.transpile.routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.transpile import (
    DecomposeMultiQubitGates,
    Topology,
    is_routed,
    route_circuit,
)


def routed_state_matches(circuit, logical_qubits, routed):
    """Final state of the routed circuit, axes permuted back to logical."""
    want = circuit.without_measurements().final_state_vector(
        qubit_order=logical_qubits
    )
    physical_order = [routed.final_mapping[l] for l in logical_qubits]
    got = routed.circuit.without_measurements().final_state_vector(
        qubit_order=physical_order
    )
    np.testing.assert_allclose(got, want, atol=1e-9)


class TestTopology:
    def test_line_adjacency(self):
        topo = Topology.line(4)
        qs = cirq.LineQubit.range(4)
        assert topo.are_adjacent(qs[0], qs[1])
        assert not topo.are_adjacent(qs[0], qs[2])

    def test_ring_wraps(self):
        topo = Topology.ring(5)
        qs = cirq.LineQubit.range(5)
        assert topo.are_adjacent(qs[4], qs[0])

    def test_ring_needs_three(self):
        with pytest.raises(ValueError, match="at least 3"):
            Topology.ring(2)

    def test_grid_adjacency(self):
        topo = Topology.grid(2, 3)
        assert topo.are_adjacent(cirq.GridQubit(0, 0), cirq.GridQubit(1, 0))
        assert not topo.are_adjacent(cirq.GridQubit(0, 0), cirq.GridQubit(1, 1))

    def test_shortest_path_on_grid(self):
        topo = Topology.grid(3, 3)
        path = topo.shortest_path(cirq.GridQubit(0, 0), cirq.GridQubit(2, 2))
        assert len(path) == 5

    def test_disconnected_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(cirq.LineQubit.range(2))
        with pytest.raises(ValueError, match="connected"):
            Topology(graph)


class TestIsRouted:
    def test_adjacent_circuit_is_routed(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.CNOT.on(qs[0], qs[1]), cirq.CNOT.on(qs[1], qs[2])
        )
        assert is_routed(circuit, Topology.line(3))

    def test_long_range_gate_is_not_routed(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.CNOT.on(qs[0], qs[2]))
        assert not is_routed(circuit, Topology.line(3))

    def test_foreign_qubit_is_not_routed(self):
        circuit = cirq.Circuit(cirq.X.on(cirq.LineQubit(9)))
        assert not is_routed(circuit, Topology.line(3))


class TestRouteCircuit:
    def test_already_routed_inserts_no_swaps(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.CNOT.on(qs[1], qs[2]),
        )
        routed = route_circuit(circuit, Topology.line(3))
        assert routed.num_swaps == 0
        routed_state_matches(circuit, qs, routed)

    def test_default_placement_avoids_swaps_when_possible(self):
        # Only q0 and q3 are used, so the default placement puts them on
        # adjacent physical qubits and no SWAP is needed.
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.CNOT.on(qs[0], qs[3]))
        routed = route_circuit(circuit, Topology.line(4))
        assert routed.num_swaps == 0
        assert is_routed(routed.circuit, Topology.line(4))

    def test_long_range_cnot_gets_swaps(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.CNOT.on(qs[0], qs[3]))
        routed = route_circuit(
            circuit, Topology.line(4), initial_mapping={q: q for q in qs}
        )
        assert routed.num_swaps == 2
        assert is_routed(routed.circuit, Topology.line(4))
        routed_state_matches(circuit, qs, routed)

    def test_ghz_on_ring(self):
        qs = cirq.LineQubit.range(5)
        circuit = cirq.Circuit(cirq.H.on(qs[0]))
        for b in qs[1:]:
            circuit.append(cirq.CNOT.on(qs[0], b))
        routed = route_circuit(circuit, Topology.ring(5))
        assert is_routed(routed.circuit, Topology.ring(5))
        routed_state_matches(circuit, qs, routed)

    def test_measurements_remapped(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.X.on(qs[2]),
            cirq.CNOT.on(qs[0], qs[2]),
            cirq.measure(*qs, key="z"),
        )
        routed = route_circuit(circuit, Topology.line(3))
        measure_ops = [
            op for op in routed.circuit.all_operations() if op.is_measurement
        ]
        assert len(measure_ops) == 1
        want = tuple(routed.final_mapping[q] for q in qs)
        assert measure_ops[0].qubits == want

    def test_too_many_qubits_rejected(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(cirq.X.on(q) for q in qs)
        with pytest.raises(ValueError, match="topology has"):
            route_circuit(circuit, Topology.line(3))

    def test_three_qubit_gate_rejected(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.TOFFOLI.on(*qs))
        with pytest.raises(ValueError, match="decompose"):
            route_circuit(circuit, Topology.line(3))

    def test_toffoli_routes_after_decomposition(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[1]), cirq.TOFFOLI.on(*qs)
        )
        lowered = DecomposeMultiQubitGates()(circuit)
        routed = route_circuit(lowered, Topology.line(3))
        assert is_routed(routed.circuit, Topology.line(3))
        routed_state_matches(circuit, qs, routed)

    def test_custom_initial_mapping(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.X.on(qs[0]))
        mapping = {qs[0]: qs[1], qs[1]: qs[0]}
        routed = route_circuit(circuit, Topology.line(2), initial_mapping=mapping)
        op = next(iter(routed.circuit.all_operations()))
        assert op.qubits == (qs[1],)

    def test_bad_initial_mapping_rejected(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.CNOT.on(*qs))
        with pytest.raises(ValueError, match="inject"):
            route_circuit(
                circuit,
                Topology.line(2),
                initial_mapping={qs[0]: qs[0], qs[1]: qs[0]},
            )
        with pytest.raises(ValueError, match="misses"):
            route_circuit(
                circuit, Topology.line(2), initial_mapping={qs[0]: qs[0]}
            )


_GATES_1Q = [cirq.H, cirq.T, cirq.X, cirq.S]
_GATES_2Q = [cirq.CNOT, cirq.CZ]


@st.composite
def routing_cases(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    qs = cirq.LineQubit.range(n)
    length = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for _ in range(length):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(_GATES_2Q))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append(gate.on(qs[a], qs[b]))
        else:
            gate = draw(st.sampled_from(_GATES_1Q))
            ops.append(gate.on(qs[draw(st.integers(0, n - 1))]))
    return n, qs, cirq.Circuit(ops)


@given(routing_cases(), st.sampled_from(["line", "ring"]))
@settings(max_examples=60, deadline=None)
def test_routing_preserves_state_property(case, kind):
    n, qs, circuit = case
    if kind == "ring" and n < 3:
        topology = Topology.line(n)
    else:
        topology = Topology.line(n) if kind == "line" else Topology.ring(n)
    routed = route_circuit(
        circuit, topology, initial_mapping={q: q for q in qs}
    )
    assert is_routed(routed.circuit, topology)
    routed_state_matches(circuit, qs, routed)
