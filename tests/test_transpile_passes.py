"""Tests for the transpiler pass framework and light-cone reduction.

The invariant every pass must satisfy: the rewritten circuit produces the
same sampling distribution over measurement keys (checked against exact
final-state probabilities, and statistically through the BGLS sampler).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import StateVectorSimulationState
from repro.transpile import (
    CancelAdjacentInverses,
    DecomposeMultiQubitGates,
    DropEmptyMoments,
    DropNegligibleGates,
    LightConeReduction,
    MergeRotations,
    PassManager,
    PassPipeline,
    PassStats,
    default_pipeline,
    light_cone_qubits,
    reduce_to_light_cone,
    transpile,
)


def final_probabilities(circuit, qubits):
    state = StateVectorSimulationState(qubits)
    for op in circuit.without_measurements().all_operations():
        act_on(op, state)
    return np.abs(state.state_vector()) ** 2


def assert_same_distribution(circuit_a, circuit_b, qubits, atol=1e-8):
    np.testing.assert_allclose(
        final_probabilities(circuit_a, qubits),
        final_probabilities(circuit_b, qubits),
        atol=atol,
    )


class TestLightCone:
    def test_unrelated_branch_is_dropped(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.H.on(qs[2]),          # outside cone
            cirq.CNOT.on(qs[2], qs[3]),  # outside cone
            cirq.measure(qs[0], qs[1], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 3
        assert light_cone_qubits(circuit) == {qs[0], qs[1]}

    def test_interacting_branch_is_kept(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[2]),
            cirq.CNOT.on(qs[2], qs[1]),
            cirq.CNOT.on(qs[1], qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 4

    def test_gate_after_measurement_on_other_qubit_dropped(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        circuit.append(cirq.X.on(qs[1]))
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 2

    def test_no_measurements_keeps_everything(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.X.on(qs[1]))
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 2
        assert light_cone_qubits(circuit) == set(qs)

    def test_mid_circuit_measurement_cone_preserved(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[2]),
            cirq.measure(qs[2], key="mid"),
            cirq.H.on(qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        # The H feeding the mid-circuit measurement must survive.
        assert reduced.num_operations() == 4

    def test_measured_marginal_unchanged(self):
        qs = cirq.LineQubit.range(5)
        circuit = cirq.random_clifford_circuit(qs, n_moments=8, random_state=3)
        circuit.append(cirq.measure(qs[0], qs[1], key="z"))
        reduced = reduce_to_light_cone(circuit)

        def marginal(c):
            probs = final_probabilities(c, qs).reshape((2,) * 5)
            return probs.sum(axis=(2, 3, 4))

        np.testing.assert_allclose(marginal(circuit), marginal(reduced), atol=1e-8)


class TestDropNegligible:
    def test_drops_identity_and_phase(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.I.on(qs[0]),
            cirq.ZPowGate(exponent=2.0).on(qs[0]),  # = identity up to phase
            cirq.X.on(qs[0]),
        )
        out = DropNegligibleGates()(circuit)
        assert out.num_operations() == 1

    def test_keeps_measurements(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.I.on(qs[0]), cirq.measure(qs[0], key="z"))
        out = DropNegligibleGates()(circuit)
        assert out.has_measurements()

    def test_distribution_preserved(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 6, random_state=11)
        out = DropNegligibleGates()(circuit)
        assert_same_distribution(circuit, out, qs)


class TestCancelAdjacentInverses:
    def test_cancels_double_h(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(cirq.H.on(q), cirq.H.on(q), cirq.X.on(q))
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 1

    def test_cascading_cancellation(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.X.on(q), cirq.H.on(q), cirq.H.on(q), cirq.X.on(q)
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_cancels_s_sdag(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(cirq.S.on(q), cirq.S_DAG.on(q))
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_cancels_cnot_pair(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.CNOT.on(qs[0], qs[1]), cirq.CNOT.on(qs[0], qs[1])
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_no_cancel_through_blocking_op(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.H.on(qs[0]),
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 3

    def test_measurement_blocks_cancellation(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.H.on(q), cirq.measure(q, key="m"), cirq.H.on(q)
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 3

    def test_distribution_preserved_random(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 10, random_state=5)
        out = CancelAdjacentInverses()(circuit)
        assert_same_distribution(circuit, out, qs)


class TestDecomposeMultiQubit:
    def _check(self, circuit, qs):
        out = DecomposeMultiQubitGates()(circuit)
        for op in out.all_operations():
            assert len(op.qubits) <= 2
        assert_same_distribution(circuit, out, qs)
        return out

    def test_toffoli_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[1]), cirq.TOFFOLI.on(*qs)
        )
        self._check(circuit, qs)

    def test_ccz_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[1]), cirq.H.on(qs[2]),
            cirq.CCZ.on(*qs),
        )
        self._check(circuit, qs)

    def test_cswap_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.X.on(qs[1]), cirq.CSWAP.on(*qs)
        )
        self._check(circuit, qs)

    def test_matrix_gate_lowered_via_qsd(self):
        import scipy.stats

        qs = cirq.LineQubit.range(3)
        u = scipy.stats.unitary_group.rvs(8, random_state=1)
        circuit = cirq.Circuit(cirq.MatrixGate(u).on(*qs))
        self._check(circuit, qs)

    def test_iswap_lowered_to_cliffords(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.ISWAP.on(*qs))
        out = self._check(circuit, qs)
        for op in out.all_operations():
            assert op._stabilizer_sequence_() is not None

    def test_swap_kept_by_default(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.SWAP.on(*qs))
        out = DecomposeMultiQubitGates()(circuit)
        assert out.num_operations() == 1
        out = DecomposeMultiQubitGates(decompose_swaps=True)(circuit)
        assert out.num_operations() == 3

    def test_measurements_pass_through(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.TOFFOLI.on(*qs), cirq.measure(*qs, key="z"))
        out = DecomposeMultiQubitGates()(circuit)
        assert out.has_measurements()


class TestPassManager:
    def test_history_records_counts(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[0]), cirq.measure(*qs, key="z")
        )
        pm = PassManager([CancelAdjacentInverses(), DropEmptyMoments()])
        out = pm.run(circuit)
        assert out.num_operations() == 1
        assert pm.history[0] == ("CancelAdjacentInverses", 3, 1)

    def test_default_pipeline_distribution_preserved(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.generate_random_circuit(qs, 12, random_state=7)
        circuit.append(cirq.measure(*qs, key="z"))
        out = default_pipeline().run(circuit)
        assert_same_distribution(circuit, out, qs)

    def test_default_pipeline_shrinks_wasteful_circuit(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit()
        for _ in range(5):
            circuit.append(cirq.H.on(qs[0]))
            circuit.append(cirq.T.on(qs[0]))
        circuit.append(cirq.H.on(qs[3]))  # outside the cone
        circuit.append(cirq.measure(qs[0], key="z"))
        out = default_pipeline().run(circuit)
        assert out.num_operations() < circuit.num_operations()

    def test_pipeline_without_light_cone(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[1]),  # would be pruned with light_cone=True
            cirq.measure(qs[0], key="z"),
        )
        out = default_pipeline(light_cone=False).run(circuit)
        assert out.num_operations() == 2

    def test_sampling_agrees_end_to_end(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.T.on(qs[1]),
            cirq.T_DAG.on(qs[1]),
            cirq.H.on(qs[2]),
            cirq.H.on(qs[2]),
            cirq.measure(qs[0], qs[1], key="z"),
        )
        optimized = default_pipeline().run(circuit)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
            seed=3,
        )
        res = sim.run(optimized, repetitions=300)
        rows = {tuple(r) for r in res.measurements["z"]}
        assert rows == {(0, 0), (1, 1)}


def assert_same_unitary_action(circuit_a, circuit_b, qubits, atol=1e-8):
    """Final states agree up to a global phase."""
    a = circuit_a.without_measurements().final_state_vector(qubit_order=qubits)
    b = circuit_b.without_measurements().final_state_vector(qubit_order=qubits)
    np.testing.assert_allclose(abs(np.vdot(a, b)), 1.0, atol=atol)


class TestMergeRotations:
    def test_same_axis_run_collapses(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=0.25).on(q[0]),
            cirq.XPowGate(exponent=0.25).on(q[0]),
        )
        out = MergeRotations()(circuit)
        (op,) = list(out.all_operations())
        assert isinstance(op.gate, cirq.XPowGate)
        assert op.gate.exponent == 0.75 * 0 + 0.5

    def test_global_phase_exact_for_rz_run(self):
        # Rz carries global_shift=-0.5; the merged gate must reproduce
        # the accumulated phase exactly, not just the distribution.
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.Rz(0.3).on(q[0]), cirq.Rz(0.5).on(q[0]), cirq.Rz(0.1).on(q[0])
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 1
        u_in = np.eye(2)
        for op in circuit.all_operations():
            u_in = op.gate._unitary_() @ u_in
        (op,) = list(out.all_operations())
        np.testing.assert_allclose(op.gate._unitary_(), u_in, atol=1e-12)

    def test_identity_run_dropped(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.Rz(np.pi / 2).on(q[0]),
            cirq.Rz(np.pi / 2).on(q[0]),
            cirq.Rz(np.pi / 2).on(q[0]),
            cirq.Rz(np.pi / 2).on(q[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 0

    def test_different_axes_do_not_merge(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=0.5).on(q[0]),
            cirq.YPowGate(exponent=0.5).on(q[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 2

    def test_phased_x_same_phase_merges(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.PhasedXPowGate(phase_exponent=0.25, exponent=0.25).on(q[0]),
            cirq.PhasedXPowGate(phase_exponent=0.25, exponent=0.25).on(q[0]),
        )
        out = MergeRotations()(circuit)
        (op,) = list(out.all_operations())
        assert isinstance(op.gate, cirq.PhasedXPowGate)
        assert op.gate.phase_exponent == 0.25
        assert op.gate.exponent == 0.5

    def test_phased_x_different_phase_does_not_merge(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.PhasedXPowGate(phase_exponent=0.25, exponent=0.25).on(q[0]),
            cirq.PhasedXPowGate(phase_exponent=0.5, exponent=0.25).on(q[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 2

    def test_two_qubit_gate_is_barrier(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=0.25).on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.XPowGate(exponent=0.25).on(qs[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 3
        assert_same_unitary_action(circuit, out, qs)

    def test_measurement_is_barrier(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=1.0).on(q[0]),
            cirq.measure(q[0], key="a"),
            cirq.XPowGate(exponent=1.0).on(q[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 3

    def test_parameterized_ops_pass_through(self):
        q = cirq.LineQubit.range(1)
        theta = cirq.Symbol("theta")
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=0.25).on(q[0]),
            cirq.Rx(theta).on(q[0]),
            cirq.XPowGate(exponent=0.25).on(q[0]),
        )
        out = MergeRotations()(circuit)
        assert out.num_operations() == 3

    def test_single_gates_untouched(self):
        q = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.XPowGate(exponent=0.3).on(q[0]))
        out = MergeRotations()(circuit)
        (op,) = list(out.all_operations())
        assert op.gate == cirq.XPowGate(exponent=0.3)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z", "h", "px", "px2"]),
                st.floats(-2.0, 2.0),
                st.sampled_from([0.0, -0.5, 0.25]),
            ),
            min_size=1,
            max_size=12,
        ),
        st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_unitary_equivalence_property(self, spec, barrier_at):
        """Merging preserves the circuit's action up to a global phase."""
        qs = cirq.LineQubit.range(2)
        gate_for = {
            "x": lambda t, s: cirq.XPowGate(exponent=t, global_shift=s),
            "y": lambda t, s: cirq.YPowGate(exponent=t, global_shift=s),
            "z": lambda t, s: cirq.ZPowGate(exponent=t, global_shift=s),
            "h": lambda t, s: cirq.HPowGate(exponent=t, global_shift=s),
            "px": lambda t, s: cirq.PhasedXPowGate(
                phase_exponent=0.25, exponent=t, global_shift=s
            ),
            "px2": lambda t, s: cirq.PhasedXPowGate(
                phase_exponent=0.75, exponent=t, global_shift=s
            ),
        }
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.H.on(qs[1]))
        for i, (kind, t, s) in enumerate(spec):
            if i == barrier_at:
                circuit.append(cirq.CZ.on(qs[0], qs[1]))
            circuit.append(gate_for[kind](t, s).on(qs[i % 2]))
        merged = MergeRotations()(circuit)
        assert merged.num_operations() <= circuit.num_operations()
        assert_same_unitary_action(circuit, merged, qs, atol=1e-7)


class TestPassPipeline:
    def _wasteful_circuit(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.XPowGate(exponent=0.25).on(qs[0]),
            cirq.XPowGate(exponent=0.25).on(qs[0]),
            cirq.H.on(qs[1]),
            cirq.H.on(qs[1]),
            cirq.measure(*qs, key="z"),
        )
        return qs, circuit

    def test_stats_record_ops_depth_and_time(self):
        # MergeRotations: the X^0.25 pair fuses to X^0.5 and the H pair
        # (exponent sum 2 = identity) is dropped, leaving 2 ops.
        qs, circuit = self._wasteful_circuit()
        pipe = PassPipeline([MergeRotations(), CancelAdjacentInverses()])
        out = pipe.run(circuit)
        assert out.num_operations() == 2
        assert len(pipe.stats) == 2
        first = pipe.stats[0]
        assert isinstance(first, PassStats)
        assert first.name == "MergeRotations"
        assert first.ops_before == 5
        assert first.ops_after == 2
        assert first.depth_before >= first.depth_after
        assert first.seconds >= 0.0

    def test_history_matches_legacy_triples(self):
        qs, circuit = self._wasteful_circuit()
        pipe = PassPipeline([CancelAdjacentInverses()])
        pipe.run(circuit)
        assert pipe.history == [("CancelAdjacentInverses", 5, 3)]

    def test_pipeline_is_composable_as_a_pass(self):
        qs, circuit = self._wasteful_circuit()
        inner = PassPipeline([MergeRotations()])
        outer = PassPipeline([inner, CancelAdjacentInverses()])
        out = outer.run(circuit)
        assert out.num_operations() == 2
        assert outer.stats[0].name == "PassPipeline"

    def test_passmanager_is_pipeline_alias(self):
        assert issubclass(PassManager, PassPipeline)
        qs, circuit = self._wasteful_circuit()
        pm = PassManager([CancelAdjacentInverses()])
        pm.run(circuit)
        assert pm.history == [("CancelAdjacentInverses", 5, 3)]

    def test_transpile_default_equals_default_pipeline(self):
        qs, circuit = self._wasteful_circuit()
        a = transpile(circuit)
        b = default_pipeline().run(circuit)
        assert repr(a) == repr(b)

    def test_transpile_accepts_pass_list(self):
        qs, circuit = self._wasteful_circuit()
        out = transpile(circuit, [MergeRotations()])
        assert out.num_operations() == 2
        assert_same_distribution(circuit, out, qs)

    def test_transpile_accepts_prebuilt_pipeline(self):
        qs, circuit = self._wasteful_circuit()
        pipe = PassPipeline([LightConeReduction(), MergeRotations()])
        out = transpile(circuit, pipe)
        assert [s.name for s in pipe.stats] == [
            "LightConeReduction",
            "MergeRotations",
        ]
        assert_same_distribution(circuit, out, qs)

    def test_transpile_light_cone_toggle(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[1]), cirq.measure(qs[0], key="z")
        )
        assert transpile(circuit).num_operations() == 1
        assert transpile(circuit, light_cone=False).num_operations() == 2
