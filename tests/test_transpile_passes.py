"""Tests for the transpiler pass framework and light-cone reduction.

The invariant every pass must satisfy: the rewritten circuit produces the
same sampling distribution over measurement keys (checked against exact
final-state probabilities, and statistically through the BGLS sampler).
"""

import numpy as np

from repro import born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import StateVectorSimulationState
from repro.transpile import (
    CancelAdjacentInverses,
    DecomposeMultiQubitGates,
    DropEmptyMoments,
    DropNegligibleGates,
    PassManager,
    default_pipeline,
    light_cone_qubits,
    reduce_to_light_cone,
)


def final_probabilities(circuit, qubits):
    state = StateVectorSimulationState(qubits)
    for op in circuit.without_measurements().all_operations():
        act_on(op, state)
    return np.abs(state.state_vector()) ** 2


def assert_same_distribution(circuit_a, circuit_b, qubits, atol=1e-8):
    np.testing.assert_allclose(
        final_probabilities(circuit_a, qubits),
        final_probabilities(circuit_b, qubits),
        atol=atol,
    )


class TestLightCone:
    def test_unrelated_branch_is_dropped(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.H.on(qs[2]),          # outside cone
            cirq.CNOT.on(qs[2], qs[3]),  # outside cone
            cirq.measure(qs[0], qs[1], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 3
        assert light_cone_qubits(circuit) == {qs[0], qs[1]}

    def test_interacting_branch_is_kept(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[2]),
            cirq.CNOT.on(qs[2], qs[1]),
            cirq.CNOT.on(qs[1], qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 4

    def test_gate_after_measurement_on_other_qubit_dropped(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        circuit.append(cirq.X.on(qs[1]))
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 2

    def test_no_measurements_keeps_everything(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.X.on(qs[1]))
        reduced = reduce_to_light_cone(circuit)
        assert reduced.num_operations() == 2
        assert light_cone_qubits(circuit) == set(qs)

    def test_mid_circuit_measurement_cone_preserved(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[2]),
            cirq.measure(qs[2], key="mid"),
            cirq.H.on(qs[0]),
            cirq.measure(qs[0], key="z"),
        )
        reduced = reduce_to_light_cone(circuit)
        # The H feeding the mid-circuit measurement must survive.
        assert reduced.num_operations() == 4

    def test_measured_marginal_unchanged(self):
        qs = cirq.LineQubit.range(5)
        circuit = cirq.random_clifford_circuit(qs, n_moments=8, random_state=3)
        circuit.append(cirq.measure(qs[0], qs[1], key="z"))
        reduced = reduce_to_light_cone(circuit)

        def marginal(c):
            probs = final_probabilities(c, qs).reshape((2,) * 5)
            return probs.sum(axis=(2, 3, 4))

        np.testing.assert_allclose(marginal(circuit), marginal(reduced), atol=1e-8)


class TestDropNegligible:
    def test_drops_identity_and_phase(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.I.on(qs[0]),
            cirq.ZPowGate(exponent=2.0).on(qs[0]),  # = identity up to phase
            cirq.X.on(qs[0]),
        )
        out = DropNegligibleGates()(circuit)
        assert out.num_operations() == 1

    def test_keeps_measurements(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.I.on(qs[0]), cirq.measure(qs[0], key="z"))
        out = DropNegligibleGates()(circuit)
        assert out.has_measurements()

    def test_distribution_preserved(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 6, random_state=11)
        out = DropNegligibleGates()(circuit)
        assert_same_distribution(circuit, out, qs)


class TestCancelAdjacentInverses:
    def test_cancels_double_h(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(cirq.H.on(q), cirq.H.on(q), cirq.X.on(q))
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 1

    def test_cascading_cancellation(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.X.on(q), cirq.H.on(q), cirq.H.on(q), cirq.X.on(q)
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_cancels_s_sdag(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(cirq.S.on(q), cirq.S_DAG.on(q))
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_cancels_cnot_pair(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.CNOT.on(qs[0], qs[1]), cirq.CNOT.on(qs[0], qs[1])
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 0

    def test_no_cancel_through_blocking_op(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.H.on(qs[0]),
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 3

    def test_measurement_blocks_cancellation(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.H.on(q), cirq.measure(q, key="m"), cirq.H.on(q)
        )
        out = CancelAdjacentInverses()(circuit)
        assert out.num_operations() == 3

    def test_distribution_preserved_random(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 10, random_state=5)
        out = CancelAdjacentInverses()(circuit)
        assert_same_distribution(circuit, out, qs)


class TestDecomposeMultiQubit:
    def _check(self, circuit, qs):
        out = DecomposeMultiQubitGates()(circuit)
        for op in out.all_operations():
            assert len(op.qubits) <= 2
        assert_same_distribution(circuit, out, qs)
        return out

    def test_toffoli_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[1]), cirq.TOFFOLI.on(*qs)
        )
        self._check(circuit, qs)

    def test_ccz_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[1]), cirq.H.on(qs[2]),
            cirq.CCZ.on(*qs),
        )
        self._check(circuit, qs)

    def test_cswap_lowered(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.X.on(qs[1]), cirq.CSWAP.on(*qs)
        )
        self._check(circuit, qs)

    def test_matrix_gate_lowered_via_qsd(self):
        import scipy.stats

        qs = cirq.LineQubit.range(3)
        u = scipy.stats.unitary_group.rvs(8, random_state=1)
        circuit = cirq.Circuit(cirq.MatrixGate(u).on(*qs))
        self._check(circuit, qs)

    def test_iswap_lowered_to_cliffords(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.ISWAP.on(*qs))
        out = self._check(circuit, qs)
        for op in out.all_operations():
            assert op._stabilizer_sequence_() is not None

    def test_swap_kept_by_default(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.SWAP.on(*qs))
        out = DecomposeMultiQubitGates()(circuit)
        assert out.num_operations() == 1
        out = DecomposeMultiQubitGates(decompose_swaps=True)(circuit)
        assert out.num_operations() == 3

    def test_measurements_pass_through(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.TOFFOLI.on(*qs), cirq.measure(*qs, key="z"))
        out = DecomposeMultiQubitGates()(circuit)
        assert out.has_measurements()


class TestPassManager:
    def test_history_records_counts(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.H.on(qs[0]), cirq.measure(*qs, key="z")
        )
        pm = PassManager([CancelAdjacentInverses(), DropEmptyMoments()])
        out = pm.run(circuit)
        assert out.num_operations() == 1
        assert pm.history[0] == ("CancelAdjacentInverses", 3, 1)

    def test_default_pipeline_distribution_preserved(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.generate_random_circuit(qs, 12, random_state=7)
        circuit.append(cirq.measure(*qs, key="z"))
        out = default_pipeline().run(circuit)
        assert_same_distribution(circuit, out, qs)

    def test_default_pipeline_shrinks_wasteful_circuit(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit()
        for _ in range(5):
            circuit.append(cirq.H.on(qs[0]))
            circuit.append(cirq.T.on(qs[0]))
        circuit.append(cirq.H.on(qs[3]))  # outside the cone
        circuit.append(cirq.measure(qs[0], key="z"))
        out = default_pipeline().run(circuit)
        assert out.num_operations() < circuit.num_operations()

    def test_pipeline_without_light_cone(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[1]),  # would be pruned with light_cone=True
            cirq.measure(qs[0], key="z"),
        )
        out = default_pipeline(light_cone=False).run(circuit)
        assert out.num_operations() == 2

    def test_sampling_agrees_end_to_end(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.T.on(qs[1]),
            cirq.T_DAG.on(qs[1]),
            cirq.H.on(qs[2]),
            cirq.H.on(qs[2]),
            cirq.measure(qs[0], qs[1], key="z"),
        )
        optimized = default_pipeline().run(circuit)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
            seed=3,
        )
        res = sim.run(optimized, repetitions=300)
        rows = {tuple(r) for r in res.measurements["z"]}
        assert rows == {(0, 0), (1, 1)}
