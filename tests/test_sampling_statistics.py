"""Statistical conformance: sampled histograms vs exact Born distributions.

Deterministic (fixed-seed) goodness-of-fit checks for the end-to-end
sampler on three workloads: GHZ, Bernstein-Vazirani, and a seeded 8-qubit
random circuit.  Each check compares the empirical histogram against the
*exact* Born distribution (computed from the dense final state) with both

* a total-variation bound calibrated to the expected sampling fluctuation
  ``E[TVD] ~ sqrt(#outcomes / (2 pi reps))``, with >2x headroom, and
* a Pearson chi-square statistic against a conservative critical value
  (binning outcomes with tiny expected counts together).

With fixed seeds these are exact regression tests, not flaky monitors:
any run-to-run difference would come from a behavior change, not luck.
"""

import networkx as nx
import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps.bernstein_vazirani import bernstein_vazirani_circuit
from repro.apps.ghz import ghz_circuit
from repro.apps.qaoa import qaoa_maxcut_circuit
from repro.sampler import PoolManager, ProcessPoolExecutor
from repro.states import (
    CliffordTableauSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def exact_distribution(circuit, qubits):
    """Exact Born probabilities of the measurement-free circuit."""
    state = StateVectorSimulationState(qubits)
    for op in circuit.all_operations():
        if not op.is_measurement:
            bgls.act_on(op, state)
    return np.abs(state.state_vector()) ** 2


def empirical_distribution(bits, n):
    weights = 1 << np.arange(n - 1, -1, -1)
    idx = np.asarray(bits, dtype=np.int64) @ weights
    return np.bincount(idx, minlength=2**n) / len(bits)


def tvd(p, q):
    return 0.5 * float(np.abs(p - q).sum())


def chi_square_statistic(counts, probs, min_expected=5.0):
    """Pearson chi-square with low-expectation bins pooled; returns
    ``(statistic, dof)``."""
    reps = counts.sum()
    order = np.argsort(probs)[::-1]
    stat, dof = 0.0, -1
    pool_obs, pool_exp = 0.0, 0.0
    for i in order:
        pool_obs += counts[i]
        pool_exp += reps * probs[i]
        if pool_exp >= min_expected:
            stat += (pool_obs - pool_exp) ** 2 / pool_exp
            dof += 1
            pool_obs, pool_exp = 0.0, 0.0
    if pool_exp > 0:
        stat += (pool_obs - pool_exp) ** 2 / max(pool_exp, 1e-12)
        dof += 1
    return stat, max(dof, 1)


def chi_square_critical(dof):
    """~99.9th percentile of chi-square via the Wilson-Hilferty cube
    approximation — avoids a scipy dependency."""
    z = 3.09  # N(0,1) 99.9th percentile
    return dof * (1 - 2 / (9 * dof) + z * np.sqrt(2 / (9 * dof))) ** 3


def assert_matches_exact(bits, probs, n, reps):
    emp = empirical_distribution(bits, n)
    budget = 2.5 * np.sqrt(np.count_nonzero(probs > 1e-12) / (2 * np.pi * reps))
    assert tvd(emp, probs) < max(budget, 0.02), (
        f"TVD {tvd(emp, probs):.4f} exceeds budget {budget:.4f}"
    )
    counts = emp * reps
    stat, dof = chi_square_statistic(counts, probs)
    assert stat < chi_square_critical(dof), (
        f"chi-square {stat:.1f} exceeds the {dof}-dof critical value"
    )


class TestGHZ:
    @pytest.mark.parametrize(
        "make_state, prob_fn",
        [
            (StateVectorSimulationState, born.compute_probability_state_vector),
            (
                StabilizerChFormSimulationState,
                born.compute_probability_stabilizer_state,
            ),
            (CliffordTableauSimulationState, born.compute_probability_tableau),
        ],
    )
    def test_ghz_histogram_matches_exact(self, make_state, prob_fn):
        n, reps = 4, 3000
        qubits = cirq.LineQubit.range(n)
        circuit = ghz_circuit(qubits, measure_key=None)
        probs = exact_distribution(circuit, qubits)
        sim = bgls.Simulator(make_state(qubits), bgls.act_on, prob_fn, seed=11)
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        # GHZ support is exactly {00..0, 11..1}.
        sums = bits.sum(axis=1)
        assert set(np.unique(sums)) <= {0, n}
        assert_matches_exact(bits, probs, n, reps)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["1011", "0000", "11111"])
    def test_bv_returns_secret_deterministically(self, secret):
        circuit = bernstein_vazirani_circuit(secret)
        qubits = circuit.all_qubits()
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=5,
        )
        result = sim.run(circuit, repetitions=200)
        rows = result.measurements["secret"]
        expected = np.array([int(c) for c in secret])
        assert np.array_equal(rows, np.tile(expected, (200, 1)))

    def test_bv_on_stabilizer_backend(self):
        circuit = bernstein_vazirani_circuit("1101")
        qubits = circuit.all_qubits()
        sim = bgls.Simulator(
            StabilizerChFormSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=6,
        )
        rows = sim.run(circuit, repetitions=100).measurements["secret"]
        assert np.array_equal(rows, np.tile([1, 1, 0, 1], (100, 1)))


class TestSeededRandomCircuit:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_8q_random_circuit_matches_exact(self, fuse):
        n, reps = 8, 6000
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.generate_random_circuit(qubits, 12, random_state=42)
        probs = exact_distribution(circuit, qubits)
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=13,
            fuse_moments=fuse,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        assert_matches_exact(bits, probs, n, reps)

    def test_qaoa_grid_pooled_point_scope_matches_exact(self):
        """Pooled point-scope run_sweep vs exact Born, per grid point.

        The statistical regression for the warm-pool sweep path: a
        parameterized QAOA MaxCut template swept over a (gamma, beta)
        grid, every point fanned across the warm process pool as one
        stream, every point's histogram checked against the exact Born
        distribution of its resolved circuit (TVD + chi-square) — and
        bit-for-bit against the serial sweep, so the goodness-of-fit
        verdicts cover the pooled samples themselves.
        """
        reps = 2500
        graph = nx.Graph([(0, 1), (1, 2), (2, 3), (0, 2)])
        n = graph.number_of_nodes()
        qubits = cirq.LineQubit.range(n)
        template = qaoa_maxcut_circuit(
            graph, cirq.Symbol("gamma"), cirq.Symbol("beta"), qubits=qubits
        )
        resolvers = [
            cirq.ParamResolver({"gamma": g, "beta": b})
            for g in (0.4, 0.9)
            for b in (0.25, 0.7)
        ]

        def make_sim(executor=None):
            return bgls.Simulator(
                StateVectorSimulationState(qubits),
                bgls.act_on,
                born.compute_probability_state_vector,
                seed=37,
                executor=executor,
            )

        with PoolManager() as manager:
            pooled = make_sim(
                ProcessPoolExecutor(
                    num_workers=2, start_method="fork", pool_manager=manager
                )
            ).sample_bitstrings_sweep(
                template, resolvers, repetitions=reps, scope="points"
            )
        serial = make_sim().sample_bitstrings_sweep(
            template, resolvers, repetitions=reps
        )
        assert len(pooled) == len(resolvers)
        for resolver, bits, serial_bits in zip(resolvers, pooled, serial):
            np.testing.assert_array_equal(bits, serial_bits)
            resolved = template.resolve_parameters(resolver)
            probs = exact_distribution(resolved, qubits)
            assert_matches_exact(bits, probs, n, reps)

    def test_8q_random_clifford_on_tableau_matches_exact(self):
        n, reps = 8, 4000
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(qubits, 16, random_state=42)
        probs = exact_distribution(circuit, qubits)
        sim = bgls.Simulator(
            CliffordTableauSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_tableau,
            seed=14,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        assert_matches_exact(bits, probs, n, reps)
