"""Tests for the protocol layer: unitary, kraus, act_on, stabilizer effect."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.protocols import (
    act_on,
    has_kraus,
    has_stabilizer_effect,
    has_unitary,
    is_channel,
    kraus,
    unitary,
)
from repro.states import StateVectorSimulationState


class TestUnitaryProtocol:
    def test_gate(self):
        np.testing.assert_allclose(unitary(cirq.X), [[0, 1], [1, 0]])

    def test_operation(self):
        op = cirq.X(cirq.LineQubit(0))
        np.testing.assert_allclose(unitary(op), [[0, 1], [1, 0]])

    def test_circuit(self):
        c = cirq.Circuit(cirq.X(cirq.LineQubit(0)))
        np.testing.assert_allclose(unitary(c), [[0, 1], [1, 0]])

    def test_default_for_channel(self):
        assert unitary(cirq.depolarize(0.5), default=None) is None
        assert not has_unitary(cirq.depolarize(0.5))

    def test_raises_without_default(self):
        with pytest.raises(TypeError):
            unitary(cirq.depolarize(0.5))

    def test_parameterized_gate(self):
        gate = cirq.Rz(cirq.Symbol("t"))
        assert unitary(gate, default=None) is None


class TestKrausProtocol:
    def test_unitary_gate_wraps_to_single_kraus(self):
        ks = kraus(cirq.H)
        assert len(ks) == 1
        np.testing.assert_allclose(ks[0], unitary(cirq.H))

    def test_channel(self):
        ks = kraus(cirq.bit_flip(0.25))
        assert len(ks) == 2
        assert has_kraus(cirq.bit_flip(0.25))

    def test_is_channel_classification(self):
        assert is_channel(cirq.bit_flip(0.25))
        assert not is_channel(cirq.H)

    def test_measurement_has_no_kraus(self):
        gate = cirq.MeasurementGate(1, key="m")
        assert kraus(gate, default=None) is None


class TestActOn:
    def test_applies_to_state(self):
        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs)
        act_on(cirq.X(qs[0]), state)
        np.testing.assert_allclose(state.state_vector(), [0, 1], atol=1e-12)

    def test_rejects_non_state(self):
        with pytest.raises(TypeError, match="_act_on_"):
            act_on(cirq.X(cirq.LineQubit(0)), object())


class TestHasStabilizerEffect:
    @pytest.mark.parametrize(
        "gate",
        [cirq.I, cirq.X, cirq.Y, cirq.Z, cirq.H, cirq.S, cirq.S_DAG,
         cirq.CNOT, cirq.CZ, cirq.SWAP, cirq.ISWAP],
    )
    def test_clifford_gates(self, gate):
        assert has_stabilizer_effect(gate)

    @pytest.mark.parametrize(
        "gate", [cirq.T, cirq.T_DAG, cirq.Rz(0.3), cirq.CCX, cirq.CCZ]
    )
    def test_non_clifford_gates(self, gate):
        assert not has_stabilizer_effect(gate)

    def test_matrix_gate_clifford_detected_numerically(self):
        """MatrixGate has no _stabilizer_sequence_; the numeric check runs."""
        gate = cirq.MatrixGate(unitary(cirq.H) @ unitary(cirq.S))
        assert has_stabilizer_effect(gate)

    def test_matrix_gate_non_clifford(self):
        gate = cirq.MatrixGate(unitary(cirq.T))
        assert not has_stabilizer_effect(gate)

    def test_two_qubit_matrix_gate(self):
        gate = cirq.MatrixGate(unitary(cirq.CNOT))
        assert has_stabilizer_effect(gate)

    def test_rz_at_clifford_angles(self):
        import math

        assert has_stabilizer_effect(cirq.Rz(math.pi / 2))
        assert has_stabilizer_effect(cirq.Rz(math.pi))
        assert not has_stabilizer_effect(cirq.Rz(math.pi / 4))

    def test_channel_is_not_stabilizer(self):
        assert not has_stabilizer_effect(cirq.depolarize(0.1))

    def test_operation_forwarding(self):
        op = cirq.S(cirq.LineQubit(0))
        assert has_stabilizer_effect(op)
