"""Statistical correctness of BGLS sampling across all state backends.

Each test draws many samples and checks the empirical distribution against
the exact Born distribution via total-variation distance with a tolerance
sized for the sample count (TV of N samples over K outcomes concentrates
around sqrt(K/N)).
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, total_variation_distance
from repro.mps import MPSState
from repro.states import (
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)

REPS = 4000


def exact_probs(circuit, qubits):
    return np.abs(circuit.without_measurements().final_state_vector(qubit_order=qubits)) ** 2


def tv_of(sim, circuit, qubits, reps=REPS):
    bits = sim.sample_bitstrings(circuit, repetitions=reps)
    return total_variation_distance(
        empirical_distribution(bits, len(qubits)), exact_probs(circuit, qubits)
    )


class TestStateVectorBackend:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_universal_circuits(self, seed):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.generate_random_circuit(qs, 12, random_state=seed)
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=seed,
        )
        assert tv_of(sim, circuit, qs) < 0.05

    def test_toffoli_circuit(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H(qs[0]), cirq.H(qs[1]), cirq.CCX(*qs), cirq.H(qs[2])
        )
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        assert tv_of(sim, circuit, qs) < 0.05


class TestStabilizerBackend:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clifford_circuits(self, seed):
        qs = cirq.LineQubit.range(5)
        circuit = cirq.random_clifford_circuit(qs, 25, random_state=seed)
        sim = bgls.Simulator(
            StabilizerChFormSimulationState(qs),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=seed,
        )
        assert tv_of(sim, circuit, qs) < 0.06

    def test_agreement_with_state_vector_backend(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.random_clifford_circuit(qs, 20, random_state=7)
        sv_sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        ch_sim = bgls.Simulator(
            StabilizerChFormSimulationState(qs),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=1,
        )
        p_sv = empirical_distribution(sv_sim.sample_bitstrings(circuit, REPS), 4)
        p_ch = empirical_distribution(ch_sim.sample_bitstrings(circuit, REPS), 4)
        assert total_variation_distance(p_sv, p_ch) < 0.07


class TestMPSBackend:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_circuits(self, seed):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.generate_random_circuit(qs, 10, random_state=seed)
        sim = bgls.Simulator(
            MPSState(qs),
            bgls.act_on,
            born.compute_probability_mps,
            seed=seed,
        )
        assert tv_of(sim, circuit, qs, reps=2000) < 0.07

    def test_ghz_extremes_only(self):
        qs = cirq.LineQubit.range(6)
        circuit = cirq.Circuit(cirq.H(qs[0]))
        for a, b in zip(qs, qs[1:]):
            circuit.append(cirq.CNOT(a, b))
        sim = bgls.Simulator(
            MPSState(qs), bgls.act_on, born.compute_probability_mps, seed=0
        )
        bits = sim.sample_bitstrings(circuit, repetitions=200)
        sums = bits.sum(axis=1)
        assert set(sums.tolist()) <= {0, 6}


class TestDensityMatrixBackend:
    def test_unitary_circuit(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 8, random_state=3)
        sim = bgls.Simulator(
            DensityMatrixSimulationState(qs),
            bgls.act_on,
            born.compute_probability_density_matrix,
            seed=0,
        )
        assert tv_of(sim, circuit, qs) < 0.05

    def test_noisy_circuit_matches_exact_channel_output(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H(qs[0]),
            cirq.depolarize(0.2)(qs[0]),
            cirq.CNOT(qs[0], qs[1]),
            cirq.amplitude_damp(0.3)(qs[1]),
            cirq.CNOT(qs[1], qs[2]),
            cirq.measure(*qs, key="m"),
        )
        dm = DensityMatrixSimulationState(qs)
        for op in circuit.without_measurements().all_operations():
            bgls.act_on(op, dm)
        exact = dm.diagonal_probabilities()
        sim = bgls.Simulator(
            DensityMatrixSimulationState(qs),
            bgls.act_on,
            born.compute_probability_density_matrix,
            seed=1,
        )
        result = sim.run(circuit, repetitions=REPS)
        emp = empirical_distribution(result.measurements["m"], 3)
        assert total_variation_distance(emp, exact) < 0.05


class TestNoisyTrajectories:
    def test_state_vector_trajectories_match_density_matrix(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H(qs[0]),
            cirq.depolarize(0.2)(qs[0]),
            cirq.CNOT(qs[0], qs[1]),
            cirq.amplitude_damp(0.3)(qs[1]),
            cirq.CNOT(qs[1], qs[2]),
            cirq.measure(*qs, key="m"),
        )
        dm = DensityMatrixSimulationState(qs)
        for op in circuit.without_measurements().all_operations():
            bgls.act_on(op, dm)
        exact = dm.diagonal_probabilities()
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=5,
        )
        result = sim.run(circuit, repetitions=REPS)
        emp = empirical_distribution(result.measurements["m"], 3)
        assert total_variation_distance(emp, exact) < 0.05

    def test_branch_zero_amplitude_edge_case(self):
        """Amplitude damping on a GHZ pair: exact zeros in branch overlaps.

        Regression test for the conditional Kraus-branch selection; the
        naive (state-global) branch choice crashes here.
        """
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H(qs[0]),
            cirq.CNOT(qs[0], qs[1]),
            cirq.amplitude_damp(0.5)(qs[1]),
            cirq.measure(*qs, key="m"),
        )
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        result = sim.run(circuit, repetitions=2000)
        emp = empirical_distribution(result.measurements["m"], 2)
        # Exact: 0.5|00> + 0.25|10> + 0.25|11>  (damping |11> -> |10| w.p. 0.5)
        np.testing.assert_allclose(emp, [0.5, 0.0, 0.25, 0.25], atol=0.05)


class TestMidCircuitMeasurement:
    def test_records_are_self_consistent(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H(qs[0]),
            cirq.measure(qs[0], key="first"),
            cirq.CNOT(qs[0], qs[1]),
            cirq.measure(qs[1], key="second"),
        )
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=2,
        )
        result = sim.run(circuit, repetitions=1000)
        np.testing.assert_array_equal(
            result.measurements["first"], result.measurements["second"]
        )
        mean = result.measurements["first"].mean()
        assert 0.4 < mean < 0.6

    def test_measurement_then_hadamard(self):
        """Measure, then rotate: outcomes of the second must be 50/50
        regardless of the first."""
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            cirq.H(qs[0]),
            cirq.measure(qs[0], key="a"),
            cirq.H(qs[0]),
            cirq.measure(qs[0], key="b"),
        )
        sim = bgls.Simulator(
            StateVectorSimulationState(qs),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=3,
        )
        result = sim.run(circuit, repetitions=2000)
        a = result.measurements["a"][:, 0]
        b = result.measurements["b"][:, 0]
        # b should be ~independent of a
        assert abs(b.mean() - 0.5) < 0.05
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.1
