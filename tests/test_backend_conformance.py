"""Backend-conformance property suite: every backend vs the reference oracles.

PR 2 gave all five state backends batched candidate-probability oracles
(``candidate_probabilities`` / ``candidate_probabilities_many``).  Nothing
structural forces those fast paths to stay consistent with each other, so
this suite pins them to the executable specifications in
:mod:`repro.states.reference`:

* Random Clifford circuits drive the state-vector, tableau, CH-form,
  density-matrix, and MPS backends; every backend's single and batched
  candidate oracles must agree with a per-candidate loop over the unpacked
  reference engines' ``probability_of`` to 1e-9.
* Widths 63/64/65 — spanning the uint64 word boundary of the bit-packed
  engines — run the same check for the two stabilizer backends.
* Random near-Clifford (Clifford+Rz) circuits drive the CH-form backend
  through ``act_on_near_clifford`` and the reference CH form through an
  identically seeded branch replay, then compare oracles; the three dense
  backends apply the rotations exactly and must agree with each other and
  with their own scalar ``probability_of`` loops.
"""

import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.mps.state import MPSState
from repro.protocols import act_on
from repro.sampler.near_clifford import (
    act_on_near_clifford,
    rotation_branch_weights,
)
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)
from repro.states.chform import StabilizerChForm
from repro.states.reference import (
    UnpackedCliffordTableau,
    UnpackedStabilizerChForm,
)
from repro.states.tableau import CliffordTableau

ATOL = 1e-9


def reference_candidates(ref, bits, support):
    """Per-candidate ``probability_of`` loop over a reference engine."""
    k = len(support)
    candidate = list(int(b) for b in bits)
    out = np.empty(2**k)
    for idx in range(2**k):
        for pos, axis in enumerate(support):
            candidate[axis] = (idx >> (k - 1 - pos)) & 1
        out[idx] = ref.probability_of(candidate)
    return out


def scalar_candidates(state, bits, support):
    """Per-candidate loop over a backend's own ``probability_of``."""
    k = len(support)
    candidate = list(int(b) for b in bits)
    out = np.empty(2**k)
    for idx in range(2**k):
        for pos, axis in enumerate(support):
            candidate[axis] = (idx >> (k - 1 - pos)) & 1
        out[idx] = state.probability_of(candidate)
    return out


def random_clifford_program(n, length, seed):
    """Engine-level (name, qubits) Clifford program (no SWAP: CH lacks it)."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(length):
        if n >= 2 and rng.random() < 0.4:
            a, b = (int(q) for q in rng.choice(n, size=2, replace=False))
            ops.append((str(rng.choice(["cx", "cz"])), (a, b)))
        else:
            name = str(rng.choice(["h", "s", "sdg", "x", "y", "z"]))
            ops.append((name, (int(rng.integers(n)),)))
    return ops


def interesting_bitstrings(n, rng, count=3):
    """Random bitstrings plus the all-zeros string."""
    bits_list = [list(rng.integers(0, 2, n)) for _ in range(count)]
    bits_list.append([0] * n)
    return bits_list


def supports_for(n, rng):
    """A single-qubit and a two-qubit support pattern."""
    return [
        [int(rng.integers(n))],
        sorted(int(q) for q in rng.choice(n, 2, replace=False)),
    ]


class TestStabilizerEnginesAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_small_width_oracles_match_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 7))
        ops = random_clifford_program(n, 25, seed)
        tab, ch = CliffordTableau(n), StabilizerChForm(n)
        ref_tab, ref_ch = UnpackedCliffordTableau(n), UnpackedStabilizerChForm(n)
        for name, qs in ops:
            for engine in (tab, ch, ref_tab, ref_ch):
                getattr(engine, f"apply_{name}")(*qs)
        bits_list = interesting_bitstrings(n, rng)
        for support in supports_for(n, rng):
            expected = np.array(
                [reference_candidates(ref_ch, b, support) for b in bits_list]
            )
            expected_tab = np.array(
                [reference_candidates(ref_tab, b, support) for b in bits_list]
            )
            np.testing.assert_allclose(expected, expected_tab, atol=ATOL)
            for engine in (tab, ch):
                many = engine.candidate_probabilities_many(bits_list, support)
                np.testing.assert_allclose(many, expected, atol=ATOL)
                singles = np.array(
                    [engine.candidate_probabilities(b, support) for b in bits_list]
                )
                np.testing.assert_allclose(singles, expected, atol=ATOL)

    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_word_boundary_widths_match_reference(self, n):
        """Widths spanning the uint64 boundary agree with the references."""
        rng = np.random.default_rng(n)
        ops = random_clifford_program(n, 60, seed=n)
        tab, ch = CliffordTableau(n), StabilizerChForm(n)
        ref_ch = UnpackedStabilizerChForm(n)
        for name, qs in ops:
            for engine in (tab, ch, ref_ch):
                getattr(engine, f"apply_{name}")(*qs)
        # One in-support bitstring (sampled by forced measurement of the
        # reference) plus one random one; keep the front small because the
        # reference chains are intentionally slow.
        sampled = [
            ref_ch.measure(q, np.random.default_rng(7 * n + q)) for q in range(n)
        ]
        ref_ch2 = UnpackedStabilizerChForm(n)
        ref_tab = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(ref_ch2, f"apply_{name}")(*qs)
            getattr(ref_tab, f"apply_{name}")(*qs)
        bits_list = [sampled, list(rng.integers(0, 2, n))]
        # [n-2, n-1] spans the word boundary at n=65 (qubits 63|64); the
        # second support exercises an interior pair.
        for support in ([n - 2, n - 1], [n - 3, n - 2]):
            expected = np.array(
                [reference_candidates(ref_ch2, b, support) for b in bits_list]
            )
            for engine, ref_expected in ((ch, expected), (tab, expected)):
                many = engine.candidate_probabilities_many(bits_list, support)
                np.testing.assert_allclose(many, ref_expected, atol=ATOL)
        # Spot-check the tableau reference on the sampled (nonzero) string.
        support = [0, n - 1]
        np.testing.assert_allclose(
            tab.candidate_probabilities(sampled, support),
            reference_candidates(ref_tab, sampled, support),
            atol=ATOL,
        )


    def test_very_wide_tableau_has_no_recursion_limit(self):
        """The off-support projection walk must stay iterative: a 1200-qubit
        query recursed once per qubit would blow the interpreter stack."""
        n = 1200
        tab = CliffordTableau(n)
        tab.apply_h(0)
        tab.apply_cx(0, n - 1)
        single = tab.candidate_probabilities([0] * n, [0])
        np.testing.assert_allclose(single, [0.5, 0.0])
        front = [[0] * n, [0] * (n - 1) + [1], [1] * n]
        many = tab.candidate_probabilities_many(front, [0])
        np.testing.assert_allclose(
            many, [[0.5, 0.0], [0.0, 0.5], [0.0, 0.0]]
        )


def _apply_circuit(state, circuit):
    for op in circuit.all_operations():
        act_on(op, state)
    return state


class TestAllBackendsAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clifford_circuits_all_five_backends(self, seed):
        n = 5
        qs = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(qs, 18, random_state=seed)
        ref = UnpackedStabilizerChForm(n)
        for op in circuit.all_operations():
            phase, prims = op._stabilizer_sequence_()
            axes = [qs.index(q) for q in op.qubits]
            for name, local in prims:
                mapped = [axes[i] for i in local]
                getattr(ref, f"apply_{name.lower()}")(*mapped)
            ref.omega *= phase
        backends = [
            _apply_circuit(StateVectorSimulationState(qs), circuit),
            _apply_circuit(DensityMatrixSimulationState(qs), circuit),
            _apply_circuit(CliffordTableauSimulationState(qs), circuit),
            _apply_circuit(StabilizerChFormSimulationState(qs), circuit),
            _apply_circuit(MPSState(qs), circuit),
        ]
        rng = np.random.default_rng(200 + seed)
        bits_list = interesting_bitstrings(n, rng)
        for support in ([1], [0, 3], [4, 2], [0, 2, 4]):
            expected = np.array(
                [reference_candidates(ref, b, support) for b in bits_list]
            )
            for state in backends:
                many = state.candidate_probabilities_many(bits_list, support)
                np.testing.assert_allclose(
                    many, expected, atol=ATOL, err_msg=repr(state)
                )
                singles = np.array(
                    [
                        state.candidate_probabilities(b, support)
                        for b in bits_list
                    ]
                )
                np.testing.assert_allclose(
                    singles, expected, atol=ATOL, err_msg=repr(state)
                )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_near_clifford_dense_backends_agree(self, seed):
        """Clifford+T circuits: exact backends agree among themselves and
        with their own scalar probability loops to 1e-9."""
        n = 4
        qs = cirq.LineQubit.range(n)
        circuit = cirq.generate_random_circuit(
            qs,
            10,
            gate_domain={cirq.H: 1, cirq.S: 1, cirq.T: 1, cirq.CNOT: 2},
            random_state=seed,
        )
        backends = [
            _apply_circuit(StateVectorSimulationState(qs), circuit),
            _apply_circuit(DensityMatrixSimulationState(qs), circuit),
            _apply_circuit(MPSState(qs), circuit),
        ]
        rng = np.random.default_rng(300 + seed)
        bits_list = interesting_bitstrings(n, rng)
        for support in ([2], [0, 3], [1, 2]):
            expected = np.array(
                [scalar_candidates(backends[0], b, support) for b in bits_list]
            )
            for state in backends:
                many = state.candidate_probabilities_many(bits_list, support)
                np.testing.assert_allclose(
                    many, expected, atol=ATOL, err_msg=repr(state)
                )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_near_clifford_ch_backend_matches_reference_replay(self, seed):
        """Sum-over-Cliffords branches replayed onto the reference engine
        leave the packed CH backend's oracles agreeing to 1e-9."""
        n = 4
        qs = cirq.LineQubit.range(n)
        circuit = cirq.generate_random_circuit(
            qs,
            12,
            gate_domain={cirq.H: 1, cirq.S: 1, cirq.T: 1, cirq.CNOT: 2},
            random_state=seed,
        )
        state = StabilizerChFormSimulationState(qs, seed=seed)
        ref = UnpackedStabilizerChForm(n)
        replay_rng = np.random.default_rng(seed)  # same stream as the state
        for op in circuit.all_operations():
            act_on_near_clifford(op, state)
            seq = op._stabilizer_sequence_()
            axes = [qs.index(q) for q in op.qubits]
            if seq is not None:
                phase, prims = seq
                for name, local in prims:
                    getattr(ref, f"apply_{name.lower()}")(
                        *[axes[i] for i in local]
                    )
                ref.omega *= phase
                continue
            theta = float(op.gate.exponent) * math.pi
            c_i, c_s = rotation_branch_weights(theta)
            if replay_rng.random() < c_s / (c_i + c_s):
                ref.apply_s(axes[0])
        rng = np.random.default_rng(400 + seed)
        bits_list = interesting_bitstrings(n, rng)
        for support in ([0], [1, 3]):
            expected = np.array(
                [reference_candidates(ref, b, support) for b in bits_list]
            )
            many = state.candidate_probabilities_many(bits_list, support)
            np.testing.assert_allclose(many, expected, atol=ATOL)
