"""Tests for the Pauli-string algebra (repro.circuits.paulis)."""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.circuits import PauliString, PauliSum, pauli_string_from_text
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import StateVectorSimulationState

Q = cirq.LineQubit.range(3)

X0 = PauliString({Q[0]: "X"})
Y0 = PauliString({Q[0]: "Y"})
Z0 = PauliString({Q[0]: "Z"})
Z1 = PauliString({Q[1]: "Z"})


class TestAlgebra:
    def test_xy_is_iz(self):
        assert X0 * Y0 == PauliString({Q[0]: "Z"}, 1j)

    def test_yx_is_minus_iz(self):
        assert Y0 * X0 == PauliString({Q[0]: "Z"}, -1j)

    def test_square_is_identity(self):
        for p in (X0, Y0, Z0):
            assert p * p == PauliString({}, 1.0)

    def test_disjoint_factors_tensor(self):
        product = Z0 * Z1
        assert product.get(Q[0]) == "Z"
        assert product.get(Q[1]) == "Z"
        assert product.weight == 2

    def test_scalar_multiplication(self):
        assert (2.0 * X0).coefficient == 2.0
        assert (X0 * -1j).coefficient == -1j

    def test_negation(self):
        assert (-X0).coefficient == -1.0

    def test_identity_factors_dropped(self):
        p = PauliString({Q[0]: "I", Q[1]: "Z"})
        assert p.weight == 1
        assert p.get(Q[0]) == "I"

    def test_rejects_unknown_pauli(self):
        with pytest.raises(ValueError, match="Unknown Pauli"):
            PauliString({Q[0]: "Q"})

    def test_hashable_and_equal(self):
        a = PauliString({Q[0]: "X", Q[1]: "Z"}, 2.0)
        b = PauliString({Q[1]: "Z", Q[0]: "X"}, 2.0)
        assert a == b and hash(a) == hash(b)

    def test_dense_text_parser(self):
        p = pauli_string_from_text("XIZ", Q)
        assert p.get(Q[0]) == "X"
        assert p.get(Q[1]) == "I"
        assert p.get(Q[2]) == "Z"

    def test_text_parser_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="factors"):
            pauli_string_from_text("XX", Q)


class TestCommutation:
    def test_same_string_commutes(self):
        assert X0.commutes_with(X0)

    def test_x_z_same_qubit_anticommute(self):
        assert not X0.commutes_with(Z0)

    def test_disjoint_strings_commute(self):
        assert X0.commutes_with(Z1)

    def test_two_anticommuting_sites_commute_overall(self):
        xx = pauli_string_from_text("XXI", Q)
        zz = pauli_string_from_text("ZZI", Q)
        assert xx.commutes_with(zz)

    def test_three_anticommuting_sites_anticommute(self):
        xxx = pauli_string_from_text("XXX", Q)
        zzz = pauli_string_from_text("ZZZ", Q)
        assert not xxx.commutes_with(zzz)


class TestMatrixForm:
    def test_single_z_matrix(self):
        m = Z0.matrix([Q[0]])
        np.testing.assert_allclose(m, np.diag([1, -1]))

    def test_kron_ordering_big_endian(self):
        m = pauli_string_from_text("ZI", Q[:2]).matrix(Q[:2])
        np.testing.assert_allclose(m, np.diag([1, 1, -1, -1]))

    def test_matrix_product_matches_algebra(self):
        a = pauli_string_from_text("XY", Q[:2])
        b = pauli_string_from_text("YZ", Q[:2])
        np.testing.assert_allclose(
            (a * b).matrix(Q[:2]), a.matrix(Q[:2]) @ b.matrix(Q[:2]), atol=1e-12
        )

    def test_rejects_foreign_qubits(self):
        with pytest.raises(ValueError, match="outside"):
            Z1.matrix([Q[0]])

    def test_expectation_from_state_vector(self):
        psi = np.array([1, 0], dtype=complex)
        assert Z0.expectation_from_state_vector(psi, [Q[0]]) == 1.0
        plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
        assert X0.expectation_from_state_vector(plus, [Q[0]]) == pytest.approx(1.0)


class TestPauliSum:
    def test_like_terms_collect(self):
        total = PauliSum([X0, X0])
        assert len(total) == 1
        assert total.terms[0].coefficient == 2.0

    def test_cancellation_removes_term(self):
        total = X0 + (-X0)
        assert len(total) == 0

    def test_sum_matrix(self):
        total = Z0 + Z1
        m = total.matrix(Q[:2])
        np.testing.assert_allclose(np.diag(m), [2, 0, 0, -2])

    def test_sum_product_distributes(self):
        lhs = (X0 + Z0) * (X0 + Z0)
        m = lhs.matrix([Q[0]])
        np.testing.assert_allclose(m, 2 * np.eye(2), atol=1e-12)

    def test_scalar_multiplication(self):
        total = 3.0 * (Z0 + Z1)
        assert all(t.coefficient == 3.0 for t in total.terms)

    def test_subtraction(self):
        total = (Z0 + Z1) - Z1
        assert len(total) == 1

    def test_sum_expectation(self):
        psi = np.zeros(4, dtype=complex)
        psi[0] = 1.0  # |00>
        total = Z0 + Z1
        assert total.expectation_from_state_vector(psi, Q[:2]) == pytest.approx(2.0)

    def test_qubits_union(self):
        total = Z0 + Z1
        assert total.qubits == (Q[0], Q[1])


class TestSamplingWorkflow:
    """End-to-end: basis change + BGLS sampling reproduces <P>."""

    def _sampled_expectation(self, prep_ops, string, reps=4000, seed=0):
        qubits = Q[:2]
        circuit = cirq.Circuit(prep_ops)
        circuit.append(string.measurement_basis_change())
        circuit.append(cirq.measure(*qubits, key="m"))
        sim = Simulator(
            initial_state=StateVectorSimulationState(qubits),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
            seed=seed,
        )
        samples = sim.run(circuit, repetitions=reps).measurements["m"]
        return string.expectation_from_samples(samples, qubits)

    def test_z_expectation_of_zero_state(self):
        got = self._sampled_expectation([cirq.I.on(Q[0])], Z0)
        assert got == pytest.approx(1.0)

    def test_x_expectation_of_plus_state(self):
        got = self._sampled_expectation([cirq.H.on(Q[0])], X0)
        assert got == pytest.approx(1.0)

    def test_y_expectation_of_y_eigenstate(self):
        got = self._sampled_expectation(
            [cirq.H.on(Q[0]), cirq.S.on(Q[0])], Y0
        )
        assert got == pytest.approx(1.0)

    def test_xx_on_bell_state(self):
        xx = pauli_string_from_text("XX", Q[:2])
        got = self._sampled_expectation(
            [cirq.H.on(Q[0]), cirq.CNOT.on(Q[0], Q[1])], xx
        )
        assert got == pytest.approx(1.0)

    def test_generic_state_matches_dense(self):
        prep = [
            cirq.Ry(0.7).on(Q[0]),
            cirq.Rx(1.1).on(Q[1]),
            cirq.CNOT.on(Q[0], Q[1]),
        ]
        string = pauli_string_from_text("YZ", Q[:2], coefficient=0.5)
        circuit = cirq.Circuit(prep)
        psi = circuit.final_state_vector(qubit_order=Q[:2])
        want = string.expectation_from_state_vector(psi, Q[:2]).real
        got = self._sampled_expectation(prep, string, reps=20000, seed=3)
        assert got == pytest.approx(want, abs=0.03)

    def test_rejects_complex_coefficient_sampling(self):
        string = PauliString({Q[0]: "Z"}, 1j)
        with pytest.raises(ValueError, match="real"):
            string.expectation_from_samples(np.zeros((4, 2)), Q[:2])

    def test_constant_string_expectation(self):
        identity = PauliString({}, 0.7)
        assert identity.expectation_from_samples(np.zeros((4, 2)), Q[:2]) == 0.7

    def test_to_operations_roundtrip(self):
        string = pauli_string_from_text("XZ", Q[:2])
        ops = string.to_operations()
        circuit = cirq.Circuit(ops)
        got = circuit.unitary(qubit_order=Q[:2])
        np.testing.assert_allclose(got, string.matrix(Q[:2]), atol=1e-12)

    def test_to_operations_rejects_scaled(self):
        with pytest.raises(ValueError, match="unit-coefficient"):
            (2.0 * X0).to_operations()
