"""Tests for Moment and Circuit construction/inspection/transformation."""

import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import Circuit, Moment, ParamResolver, Symbol


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


class TestMoment:
    def test_disjointness_enforced(self, qubits):
        with pytest.raises(ValueError, match="Overlapping"):
            Moment([cirq.H(qubits[0]), cirq.X(qubits[0])])

    def test_operates_on(self, qubits):
        m = Moment([cirq.H(qubits[0])])
        assert m.operates_on([qubits[0]])
        assert not m.operates_on([qubits[1]])

    def test_operation_at(self, qubits):
        op = cirq.H(qubits[1])
        m = Moment([op])
        assert m.operation_at(qubits[1]) == op
        assert m.operation_at(qubits[0]) is None

    def test_with_operation(self, qubits):
        m = Moment([cirq.H(qubits[0])]).with_operation(cirq.X(qubits[1]))
        assert len(m) == 2

    def test_len_iter_bool(self, qubits):
        m = Moment([cirq.H(qubits[0]), cirq.X(qubits[1])])
        assert len(m) == 2
        assert list(m)
        assert bool(m)
        assert not bool(Moment())


class TestCircuitConstruction:
    def test_earliest_packing(self, qubits):
        c = Circuit(cirq.H(qubits[0]), cirq.H(qubits[1]))
        assert c.depth() == 1

    def test_dependent_ops_stack(self, qubits):
        c = Circuit(cirq.H(qubits[0]), cirq.X(qubits[0]))
        assert c.depth() == 2

    def test_two_qubit_blocks(self, qubits):
        c = Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.H(qubits[2]),
        )
        # H(q2) slides back into the first moment.
        assert c.depth() == 2
        assert c.moments[0].operates_on([qubits[2]])

    def test_nested_iterables(self, qubits):
        c = Circuit([cirq.H(q) for q in qubits], [[cirq.X(qubits[0])]])
        assert c.num_operations() == 4

    def test_bare_gate_raises(self):
        with pytest.raises(TypeError, match="bare gate"):
            Circuit(cirq.H)

    def test_append_new_moment(self, qubits):
        c = Circuit()
        c.append_new_moment([cirq.H(qubits[0])])
        c.append_new_moment([cirq.H(qubits[0])])
        c.append_new_moment([])
        assert c.depth() == 3

    def test_addition(self, qubits):
        c1 = Circuit(cirq.H(qubits[0]))
        c2 = Circuit(cirq.X(qubits[0]))
        combined = c1 + c2
        assert combined.depth() == 2
        assert c1.depth() == 1  # unchanged


class TestCircuitInspection:
    def test_all_qubits_sorted(self, qubits):
        c = Circuit(cirq.H(qubits[2]), cirq.H(qubits[0]))
        assert c.all_qubits() == [qubits[0], qubits[2]]

    def test_all_operations_in_time_order(self, qubits):
        ops = [cirq.H(qubits[0]), cirq.X(qubits[0]), cirq.Y(qubits[0])]
        c = Circuit(ops)
        assert list(c.all_operations()) == ops

    def test_measurement_keys(self, qubits):
        c = Circuit(
            cirq.measure(qubits[0], key="a"), cirq.measure(qubits[1], key="b")
        )
        assert c.all_measurement_keys() == ["a", "b"]
        assert c.has_measurements()

    def test_terminal_measurement_detection(self, qubits):
        terminal = Circuit(cirq.H(qubits[0]), cirq.measure(qubits[0], key="m"))
        assert terminal.are_all_measurements_terminal()
        midway = Circuit(
            cirq.measure(qubits[0], key="m"), cirq.H(qubits[0])
        )
        assert not midway.are_all_measurements_terminal()

    def test_is_unitary_circuit(self, qubits):
        assert Circuit(cirq.H(qubits[0])).is_unitary_circuit()
        noisy = Circuit(cirq.depolarize(0.1)(qubits[0]))
        assert not noisy.is_unitary_circuit()
        # measurements don't count against unitarity
        measured = Circuit(cirq.H(qubits[0]), cirq.measure(qubits[0], key="m"))
        assert measured.is_unitary_circuit()

    def test_indexing_and_slicing(self, qubits):
        c = Circuit(cirq.H(qubits[0]), cirq.X(qubits[0]), cirq.Y(qubits[0]))
        assert isinstance(c[0], Moment)
        assert c[1:].depth() == 2
        assert len(c) == 3


class TestCircuitNumerics:
    def test_ghz_state(self, qubits):
        c = Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.CNOT(qubits[1], qubits[2]),
        )
        psi = c.final_state_vector()
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / math.sqrt(2)
        np.testing.assert_allclose(psi, expected, atol=1e-9)

    def test_unitary_of_bell_pair_circuit(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(cirq.H(q[0]), cirq.CNOT(q[0], q[1]))
        u = c.unitary()
        np.testing.assert_allclose(u @ u.conj().T, np.eye(4), atol=1e-9)
        np.testing.assert_allclose(
            u[:, 0], [1 / math.sqrt(2), 0, 0, 1 / math.sqrt(2)], atol=1e-9
        )

    def test_unitary_respects_qubit_order(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(cirq.X(q[0]))
        u_default = c.unitary(qubit_order=q)
        u_reversed = c.unitary(qubit_order=[q[1], q[0]])
        np.testing.assert_allclose(
            u_default, np.kron(np.eye(2)[[1, 0]], np.eye(2)), atol=1e-9
        )
        np.testing.assert_allclose(
            u_reversed, np.kron(np.eye(2), np.eye(2)[[1, 0]]), atol=1e-9
        )

    def test_unitary_rejects_measurements(self, qubits):
        c = Circuit(cirq.measure(qubits[0], key="m"))
        with pytest.raises(ValueError):
            c.unitary()

    def test_final_state_matches_unitary_column(self):
        q = cirq.LineQubit.range(3)
        c = cirq.generate_random_circuit(q, 6, random_state=0)
        np.testing.assert_allclose(
            c.final_state_vector(qubit_order=q),
            c.unitary(qubit_order=q)[:, 0],
            atol=1e-9,
        )


class TestCircuitTransformation:
    def test_resolve_parameters(self):
        q = cirq.LineQubit(0)
        c = Circuit(cirq.Rz(Symbol("t")).on(q))
        assert c._is_parameterized_()
        resolved = c.resolve_parameters(ParamResolver({"t": math.pi}))
        assert not resolved._is_parameterized_()
        # Rz(pi)|0> = -i|0>: probabilities unchanged, global phase only.
        probs = np.abs(resolved.final_state_vector()) ** 2
        np.testing.assert_allclose(probs, [1, 0], atol=1e-9)

    def test_resolve_with_dict(self):
        q = cirq.LineQubit(0)
        c = Circuit(cirq.Rx(Symbol("t")).on(q))
        resolved = c.resolve_parameters({"t": math.pi})
        probs = np.abs(resolved.final_state_vector()) ** 2
        np.testing.assert_allclose(probs, [0, 1], atol=1e-9)

    def test_without_measurements(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(cirq.H(q[0]), cirq.measure(*q, key="z"))
        stripped = c.without_measurements()
        assert not stripped.has_measurements()
        assert stripped.num_operations() == 1

    def test_copy_is_independent(self):
        q = cirq.LineQubit(0)
        c = Circuit(cirq.H(q))
        c2 = c.copy()
        c2.append(cirq.X(q))
        assert c.depth() == 1
        assert c2.depth() == 2


class TestDiagram:
    def test_contains_gate_symbols(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(cirq.H(q[0]), cirq.CNOT(q[0], q[1]), cirq.measure(*q, key="z"))
        text = str(c)
        assert "H" in text
        assert "@" in text
        assert "X" in text
        assert "M" in text

    def test_empty_circuit(self):
        assert "empty" in str(Circuit())
