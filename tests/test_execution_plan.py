"""Tests for the compiled execution plan (sampler/plan.py)."""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler.plan import compile_plan
from repro.states import (
    CliffordTableauSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


class TestCompilePlan:
    def test_records_cache_support_and_metadata(self, qubits):
        a, b, c = qubits
        circuit = cirq.Circuit(
            cirq.H(a), cirq.CNOT(a, b), cirq.T(c), cirq.measure(a, b, key="m")
        )
        state = StateVectorSimulationState(qubits)
        plan = compile_plan(circuit, state, act_on)
        assert plan.num_qubits == 3
        assert not plan.needs_trajectories
        # Moment packing puts T(c) alongside H(a) in the first moment.
        assert [rec.support for rec in plan.records] == [(0,), (2,), (0, 1), (0, 1)]
        h, t, cnot, m = plan.records
        assert h.unitary is not None and h.stab_seq is not None
        assert t.stab_seq is None  # T is not Clifford
        assert m.is_measurement and m.measurement_key == "m"
        assert plan.key_axes == {"m": (0, 1)}

    def test_diagonal_flag_computed_once_and_cached(self, qubits):
        a = qubits[0]
        circuit = cirq.Circuit(cirq.T(a), cirq.H(a))
        state = StateVectorSimulationState(qubits)
        plan = compile_plan(circuit, state, act_on)
        t_rec, h_rec = plan.records
        assert t_rec._diagonal is None  # lazy until first query
        assert t_rec.is_diagonal() and t_rec._diagonal is True
        assert not h_rec.is_diagonal()
        # Cached: mutating the stored unitary no longer changes the answer.
        t_rec.unitary = np.zeros((2, 2))
        assert t_rec.is_diagonal()

    def test_duplicate_measurement_key_raises(self, qubits):
        a, b, _ = qubits
        circuit = cirq.Circuit(
            cirq.measure(a, key="k"), cirq.measure(b, key="k")
        )
        state = StateVectorSimulationState(qubits)
        with pytest.raises(ValueError, match="Duplicate measurement key"):
            compile_plan(circuit, state, act_on)

    def test_unknown_qubit_raises(self, qubits):
        stranger = cirq.LineQubit(99)
        circuit = cirq.Circuit(cirq.X(stranger))
        state = StateVectorSimulationState(qubits)
        with pytest.raises(ValueError, match="not in state register"):
            compile_plan(circuit, state, act_on)

    def test_trajectory_triggers(self, qubits):
        a, b, _ = qubits
        state = StateVectorSimulationState(qubits)
        unitary = cirq.Circuit(cirq.H(a), cirq.measure(a, key="m"))
        assert not compile_plan(unitary, state, act_on).needs_trajectories

        noisy = cirq.Circuit(cirq.H(a), cirq.depolarize(0.1)(a))
        noisy_plan = compile_plan(noisy, state, act_on)
        assert noisy_plan.needs_trajectories
        assert noisy_plan.records[1].kraus is not None
        assert noisy_plan.records[1].needs_branching

        mid = cirq.Circuit(cirq.measure(a, key="e"), cirq.H(a))
        assert compile_plan(mid, state, act_on).needs_trajectories

        def stochastic(op, state):  # pragma: no cover - never called
            act_on(op, state)

        stochastic._bgls_stochastic_ = True
        assert compile_plan(unitary, state, stochastic).needs_trajectories

    def test_density_matrix_channels_do_not_branch(self, qubits):
        from repro.states import DensityMatrixSimulationState

        a = qubits[0]
        circuit = cirq.Circuit(cirq.H(a), cirq.depolarize(0.1)(a))
        state = DensityMatrixSimulationState(qubits)
        plan = compile_plan(circuit, state, act_on)
        assert not plan.records[1].needs_branching

    def test_fast_paths_selected_per_state(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        sv_plan = compile_plan(circuit, StateVectorSimulationState(qubits), act_on)
        assert sv_plan.fast_unitary and not sv_plan.fast_stab
        ch_plan = compile_plan(
            circuit, StabilizerChFormSimulationState(qubits), act_on
        )
        assert ch_plan.fast_stab and not ch_plan.fast_unitary
        tab_plan = compile_plan(
            circuit, CliffordTableauSimulationState(qubits), act_on
        )
        assert tab_plan.fast_stab

        def custom(op, state):  # pragma: no cover - never called
            act_on(op, state)

        custom_plan = compile_plan(
            circuit, StateVectorSimulationState(qubits), custom
        )
        assert not custom_plan.fast_unitary and not custom_plan.fast_stab


class TestPlannedExecutionMatchesBackends:
    """All three backends sample the same GHZ distribution via their plans."""

    def test_ghz_sampling_agreement(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.CNOT(qubits[1], qubits[2]),
            cirq.measure(*qubits, key="z"),
        )
        reps = 400
        for make_state, prob_fn in [
            (StateVectorSimulationState, born.compute_probability_state_vector),
            (
                StabilizerChFormSimulationState,
                born.compute_probability_stabilizer_state,
            ),
            (CliffordTableauSimulationState, born.compute_probability_tableau),
        ]:
            sim = bgls.Simulator(make_state(qubits), bgls.act_on, prob_fn, seed=9)
            result = sim.run(circuit, repetitions=reps)
            rows = result.measurements["z"]
            assert rows.shape == (reps, 3)
            as_ints = rows @ np.array([4, 2, 1])
            assert set(np.unique(as_ints)) == {0, 7}
            frac = float(np.mean(as_ints == 0))
            assert 0.35 < frac < 0.65

    def test_skip_diagonal_updates_still_correct(self, qubits):
        a = qubits[0]
        circuit = cirq.Circuit(
            cirq.H(a), cirq.T(a), cirq.Z(a), cirq.measure(a, key="m")
        )
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=2,
            skip_diagonal_updates=True,
        )
        result = sim.run(circuit, repetitions=300)
        frac = float(result.measurements["m"].mean())
        assert 0.35 < frac < 0.65


class TestMomentFusion:
    """Moments of disjoint single-qubit Clifford gates compile fused."""

    def test_moment_of_singles_fuses_into_one_record(self):
        from repro.sampler.plan import FusedOpRecord

        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(
            [cirq.H(qs[0]), cirq.S(qs[1]), cirq.X(qs[2]), cirq.Z(qs[3])]
        )
        plan = compile_plan(circuit, StateVectorSimulationState(qs), act_on)
        assert len(plan.records) == 1
        rec = plan.records[0]
        assert type(rec) is FusedOpRecord
        assert rec.support == (0, 1, 2, 3)
        assert not rec.is_diagonal()  # H and X are not diagonal

    def test_diagonal_only_group_reports_diagonal(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit([cirq.Z(qs[0]), cirq.S(qs[1])])
        plan = compile_plan(circuit, StateVectorSimulationState(qs), act_on)
        assert plan.records[0].is_diagonal()

    def test_group_size_is_capped(self):
        from repro.sampler.plan import MAX_FUSED_SUPPORT, FusedOpRecord

        n = MAX_FUSED_SUPPORT + 3
        qs = cirq.LineQubit.range(n)
        circuit = cirq.Circuit([cirq.H(q) for q in qs])
        plan = compile_plan(circuit, StateVectorSimulationState(qs), act_on)
        assert len(plan.records) == 2
        assert type(plan.records[0]) is FusedOpRecord
        assert len(plan.records[0].records) == MAX_FUSED_SUPPORT
        assert len(plan.records[1].records) == 3

    def test_non_clifford_and_multiqubit_ops_stay_unfused(self):
        from repro.sampler.plan import FusedOpRecord

        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(
            [cirq.H(qs[0]), cirq.T(qs[1]), cirq.CNOT(qs[2], qs[3])]
        )
        plan = compile_plan(circuit, StateVectorSimulationState(qs), act_on)
        assert not any(type(r) is FusedOpRecord for r in plan.records)
        assert len(plan.records) == 3

    def test_fusion_disabled_flags(self):
        from repro.sampler.plan import FusedOpRecord

        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit([cirq.H(q) for q in qs])
        plan = compile_plan(
            circuit, StateVectorSimulationState(qs), act_on, fuse_moments=False
        )
        assert len(plan.records) == 3

        def custom(op, state):  # pragma: no cover - never called
            act_on(op, state)

        plan = compile_plan(circuit, StateVectorSimulationState(qs), custom)
        assert not any(type(r) is FusedOpRecord for r in plan.records)

    @pytest.mark.parametrize(
        "make_state",
        [
            StateVectorSimulationState,
            StabilizerChFormSimulationState,
            CliffordTableauSimulationState,
        ],
    )
    def test_fused_apply_reaches_same_state(self, make_state):
        """plan.apply on fused records == sequential per-gate application."""
        qs = cirq.LineQubit.range(5)
        circuit = cirq.Circuit(
            [cirq.H(qs[0]), cirq.S(qs[1]), cirq.Y(qs[2]), cirq.Z(qs[3]),
             cirq.X(qs[4])]
        )
        fused_state = make_state(qs)
        plain_state = make_state(qs)
        plan = compile_plan(circuit, fused_state, act_on)
        for rec in plan.records:
            plan.apply(rec, fused_state, act_on)
        for op in circuit.all_operations():
            act_on(op, plain_state)
        bits_list = [[0] * 5, [1, 0, 1, 0, 1], [1] * 5]
        np.testing.assert_allclose(
            fused_state.candidate_probabilities_many(bits_list, [0, 2, 4]),
            plain_state.candidate_probabilities_many(bits_list, [0, 2, 4]),
            atol=1e-12,
        )

    def test_fused_sampling_matches_unfused_distribution(self):
        qs = cirq.LineQubit.range(5)
        circuit = cirq.random_clifford_circuit(qs, 20, random_state=5)
        reps = 2000
        hists = []
        for fuse in (True, False):
            sim = bgls.Simulator(
                StabilizerChFormSimulationState(qs),
                bgls.act_on,
                born.compute_probability_stabilizer_state,
                seed=21,
                fuse_moments=fuse,
            )
            bits = sim.sample_bitstrings(circuit, repetitions=reps)
            idx = bits @ (1 << np.arange(4, -1, -1))
            hists.append(np.bincount(idx, minlength=32) / reps)
        assert 0.5 * np.abs(hists[0] - hists[1]).sum() < 0.07
