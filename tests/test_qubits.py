"""Tests for qubit identifier types."""

import pytest

from repro.circuits import GridQubit, LineQubit, NamedQubit, sorted_qubits
from repro.circuits.qubits import qubit_index_map


class TestLineQubit:
    def test_range(self):
        qs = LineQubit.range(3)
        assert [q.x for q in qs] == [0, 1, 2]

    def test_range_with_start_stop(self):
        qs = LineQubit.range(2, 5)
        assert [q.x for q in qs] == [2, 3, 4]

    def test_ordering(self):
        assert LineQubit(0) < LineQubit(1)
        assert LineQubit(5) > LineQubit(-1)
        assert LineQubit(2) <= LineQubit(2)

    def test_equality_and_hash(self):
        assert LineQubit(3) == LineQubit(3)
        assert LineQubit(3) != LineQubit(4)
        assert hash(LineQubit(3)) == hash(LineQubit(3))
        assert len({LineQubit(1), LineQubit(1), LineQubit(2)}) == 2

    def test_arithmetic(self):
        assert LineQubit(3) + 2 == LineQubit(5)
        assert LineQubit(3) - 1 == LineQubit(2)

    def test_dimension(self):
        assert LineQubit(0).dimension == 2

    def test_repr_str(self):
        assert repr(LineQubit(7)) == "LineQubit(7)"
        assert str(LineQubit(7)) == "q(7)"


class TestGridQubit:
    def test_square(self):
        qs = GridQubit.square(2)
        assert len(qs) == 4
        assert qs[0] == GridQubit(0, 0)
        assert qs[3] == GridQubit(1, 1)

    def test_rect(self):
        qs = GridQubit.rect(2, 3)
        assert len(qs) == 6

    def test_adjacency(self):
        assert GridQubit(0, 0).is_adjacent(GridQubit(0, 1))
        assert GridQubit(0, 0).is_adjacent(GridQubit(1, 0))
        assert not GridQubit(0, 0).is_adjacent(GridQubit(1, 1))
        assert not GridQubit(0, 0).is_adjacent(GridQubit(0, 0))

    def test_ordering_row_major(self):
        assert GridQubit(0, 5) < GridQubit(1, 0)
        assert GridQubit(1, 1) < GridQubit(1, 2)


class TestNamedQubit:
    def test_range(self):
        qs = NamedQubit.range(3, prefix="a")
        assert [q.name for q in qs] == ["a0", "a1", "a2"]

    def test_lexicographic_order(self):
        assert NamedQubit("alice") < NamedQubit("bob")


class TestMixedTypes:
    def test_cross_type_ordering_is_deterministic(self):
        qs = [NamedQubit("z"), LineQubit(0), GridQubit(0, 0)]
        once = sorted_qubits(qs)
        again = sorted_qubits(list(reversed(qs)))
        assert once == again

    def test_cross_type_inequality(self):
        assert LineQubit(0) != NamedQubit("q(0)")

    def test_index_map(self):
        qs = LineQubit.range(4)
        index = qubit_index_map(qs)
        assert index[qs[2]] == 2
        assert len(index) == 4


def test_qid_comparison_with_non_qid():
    assert LineQubit(0).__eq__(42) is NotImplemented
    with pytest.raises(TypeError):
        _ = LineQubit(0) < 42
