"""Tests for the born module: scalar/batched probability functions."""

import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.states import (
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def evolved(state_cls, circuit, qubits, **kw):
    state = state_cls(qubits, **kw)
    for op in circuit.all_operations():
        bgls.act_on(op, state)
    return state


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


@pytest.fixture
def clifford_circuit(qubits):
    return cirq.random_clifford_circuit(qubits, 15, random_state=0)


class TestScalarFunctions:
    def test_all_backends_agree(self, qubits, clifford_circuit):
        sv = evolved(StateVectorSimulationState, clifford_circuit, qubits)
        dm = evolved(DensityMatrixSimulationState, clifford_circuit, qubits)
        ch = evolved(StabilizerChFormSimulationState, clifford_circuit, qubits)
        mps = evolved(MPSState, clifford_circuit, qubits)
        for idx in range(8):
            bits = [(idx >> (2 - j)) & 1 for j in range(3)]
            p = born.compute_probability_state_vector(sv, bits)
            assert born.compute_probability_density_matrix(dm, bits) == pytest.approx(p, abs=1e-9)
            assert born.compute_probability_stabilizer_state(ch, bits) == pytest.approx(p, abs=1e-9)
            assert born.compute_probability_mps(mps, bits) == pytest.approx(p, abs=1e-9)

    def test_mps_bitstring_probability_alias(self, qubits, clifford_circuit):
        mps = evolved(MPSState, clifford_circuit, qubits)
        assert born.mps_bitstring_probability(mps, [0, 0, 0]) == pytest.approx(
            born.compute_probability_mps(mps, [0, 0, 0])
        )

    def test_probabilities_normalized(self, qubits, clifford_circuit):
        sv = evolved(StateVectorSimulationState, clifford_circuit, qubits)
        total = sum(
            born.compute_probability_state_vector(
                sv, [(i >> (2 - j)) & 1 for j in range(3)]
            )
            for i in range(8)
        )
        assert total == pytest.approx(1.0)


class TestBatchedFunctions:
    @pytest.mark.parametrize(
        "scalar,batched",
        [
            (born.compute_probability_state_vector, born.candidates_state_vector),
            (born.compute_probability_density_matrix, born.candidates_density_matrix),
            (born.compute_probability_stabilizer_state, born.candidates_stabilizer_state),
            (born.compute_probability_mps, born.candidates_mps),
            (born.mps_bitstring_probability, born.candidates_mps),
        ],
    )
    def test_candidate_function_mapping(self, scalar, batched):
        assert born.candidate_function_for(scalar) is batched

    def test_unknown_function_maps_to_none(self):
        assert born.candidate_function_for(lambda s, b: 0.0) is None

    def test_batched_matches_scalar_all_backends(self, qubits, clifford_circuit):
        backends = [
            (StateVectorSimulationState, born.compute_probability_state_vector,
             born.candidates_state_vector),
            (DensityMatrixSimulationState, born.compute_probability_density_matrix,
             born.candidates_density_matrix),
            (StabilizerChFormSimulationState, born.compute_probability_stabilizer_state,
             born.candidates_stabilizer_state),
            (MPSState, born.compute_probability_mps, born.candidates_mps),
        ]
        bits = [1, 0, 1]
        support = [0, 2]
        for cls, scalar, batched in backends:
            state = evolved(cls, clifford_circuit, qubits)
            fast = batched(state, bits, support)
            for idx in range(4):
                full = list(bits)
                full[0] = (idx >> 1) & 1
                full[2] = idx & 1
                assert fast[idx] == pytest.approx(scalar(state, full), abs=1e-9), cls
