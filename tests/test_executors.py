"""Tests for the executor layer: serial/pooled parity, shared-plan pool."""

import multiprocessing
import os
import time

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.sampler import AdaptiveScheduler, PoolManager, WorkStealingScheduler
from repro.sampler.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    TaskTimeoutError,
    _chunk_seeds,
    _chunk_sizes,
    _WorkerPayload,
)
from repro.sampler.result_planes import live_segment_names
from repro.states import StateVectorSimulationState

QUBITS = cirq.LineQubit.range(2)


def make_sim(seed, executor=None):
    """Module-level builder: every component is picklable (pool-safe)."""
    return bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        executor=executor,
    )


def noisy_bell_circuit():
    return cirq.Circuit(
        cirq.H.on(QUBITS[0]),
        channels.depolarize(0.1).on(QUBITS[0]),
        cirq.CNOT.on(QUBITS[0], QUBITS[1]),
        cirq.measure(*QUBITS, key="z"),
    )


def bell_circuit():
    return cirq.Circuit(
        cirq.H.on(QUBITS[0]),
        cirq.CNOT.on(QUBITS[0], QUBITS[1]),
        cirq.measure(*QUBITS, key="z"),
    )


def available_start_methods():
    methods = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "forkserver") if m in methods]


def _sleepy_probability(state, bitstring):
    """Worker-side hang injection for the task_timeout tests (fork-only:
    module-level so the forked child resolves it without re-import)."""
    time.sleep(600)
    return 1.0  # pragma: no cover - the timeout always fires first


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


class TestSerialExecutor:
    def test_default_serial_equals_no_executor(self):
        """chunks=1 runs off the simulator RNG — bit-for-bit the bare path."""
        circuit = noisy_bell_circuit()
        bare = make_sim(seed=3).sample_bitstrings(circuit, repetitions=30)
        via_exec = make_sim(seed=3, executor=SerialExecutor()).sample_bitstrings(
            circuit, repetitions=30
        )
        np.testing.assert_array_equal(bare, via_exec)

    def test_chunked_serial_reproducible(self):
        circuit = noisy_bell_circuit()
        a = make_sim(seed=5, executor=SerialExecutor(chunks=4)).sample_bitstrings(
            circuit, repetitions=30
        )
        b = make_sim(seed=5, executor=SerialExecutor(chunks=4)).sample_bitstrings(
            circuit, repetitions=30
        )
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_chunks(self):
        with pytest.raises(ValueError, match="chunks"):
            SerialExecutor(chunks=0)

    def test_parallel_mode_also_chunks(self):
        """Unitary circuits run the parallel front once per chunk."""
        sim = make_sim(seed=7, executor=SerialExecutor(chunks=3))
        result = sim.run(bell_circuit(), repetitions=900)
        rows = result.measurements["z"]
        assert rows.shape == (900, 2)
        as_ints = rows @ np.array([2, 1])
        assert set(np.unique(as_ints)) == {0, 3}
        assert 0.4 < float(np.mean(as_ints == 0)) < 0.6


class TestPooledExecutor:
    def test_serial_vs_pooled_identical_histograms(self):
        """The parity contract: same seed + same total chunk count means
        bit-for-bit identical output, in-process or pooled."""
        circuit = noisy_bell_circuit()
        serial = make_sim(seed=11, executor=SerialExecutor(chunks=4))
        pooled = make_sim(
            seed=11,
            executor=ProcessPoolExecutor(
                num_workers=2, chunks_per_worker=2, start_method="fork"
            ),
        )
        records_s, bits_s = serial._execute(circuit, 40, None)
        records_p, bits_p = pooled._execute(circuit, 40, None)
        np.testing.assert_array_equal(bits_s, bits_p)
        np.testing.assert_array_equal(records_s["z"], records_p["z"])

    @pytest.mark.parametrize("start_method", available_start_methods())
    def test_pooled_reproducible_per_start_method(self, start_method):
        circuit = noisy_bell_circuit()
        runs = []
        for _ in range(2):
            sim = make_sim(
                seed=13,
                executor=ProcessPoolExecutor(
                    num_workers=2, start_method=start_method
                ),
            )
            runs.append(sim.sample_bitstrings(circuit, repetitions=24))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_single_worker_fallback_matches_pool(self):
        """workers=1 runs in-process with identical chunk geometry."""
        circuit = noisy_bell_circuit()
        one = make_sim(
            seed=17,
            executor=ProcessPoolExecutor(num_workers=1, chunks_per_worker=4),
        ).sample_bitstrings(circuit, repetitions=32)
        four = make_sim(
            seed=17,
            executor=ProcessPoolExecutor(
                num_workers=4, chunks_per_worker=1, start_method="fork"
            ),
        ).sample_bitstrings(circuit, repetitions=32)
        np.testing.assert_array_equal(one, four)

    def test_pooled_unitary_circuit(self):
        sim = make_sim(
            seed=19,
            executor=ProcessPoolExecutor(num_workers=2, start_method="fork"),
        )
        result = sim.run(bell_circuit(), repetitions=800)
        rows = result.measurements["z"]
        assert rows.shape == (800, 2)
        as_ints = rows @ np.array([2, 1])
        assert set(np.unique(as_ints)) == {0, 3}
        assert 0.4 < float(np.mean(as_ints == 0)) < 0.6

    def test_distribution_matches_bare_simulator(self):
        circuit = noisy_bell_circuit()
        reps = 1200
        pooled = make_sim(
            seed=23,
            executor=ProcessPoolExecutor(num_workers=2, start_method="fork"),
        ).sample_bitstrings(circuit, repetitions=reps)
        bare = make_sim(seed=29).sample_bitstrings(circuit, repetitions=reps)

        def hist(bits):
            h = np.zeros(4)
            for row in bits:
                h[2 * row[0] + row[1]] += 1
            return h / len(bits)

        tv = 0.5 * np.abs(hist(pooled) - hist(bare)).sum()
        assert tv < 0.08

    def test_task_payload_is_two_integers(self):
        """The O(1)-startup contract: the per-task payload carries no
        circuit, no plan, and no state — just (chunk_size, chunk_seed)
        plus the batched engine's three-integer seeding anchor."""
        from repro.sampler.executors import _run_pool_chunk
        import inspect

        params = list(inspect.signature(_run_pool_chunk).parameters)
        assert params == ["size", "seed", "ctx"]

    def test_worker_payload_ships_plan_and_state_once(self):
        sim = make_sim(seed=31)
        plan = sim.compile(noisy_bell_circuit()).specialize(None)
        payload = _WorkerPayload(sim, plan)
        assert payload.plan is plan
        rebuilt = payload.build_simulator()
        assert type(rebuilt.initial_state) is StateVectorSimulationState
        # The rebuilt simulator runs the shared plan without recompiling.
        records, bits = rebuilt._run_trajectories(
            plan, 5, rng=np.random.default_rng(0)
        )
        assert bits.shape == (5, 2)
        assert records["z"].shape == (5, 2)


class TestChunkHelpers:
    def test_chunk_sizes_preserved(self):
        for reps in (1, 7, 100, 1001):
            for chunks in (1, 3, 8):
                assert sum(_chunk_sizes(reps, chunks)) == reps

    def test_chunk_seeds_are_prefix_stable(self):
        assert _chunk_seeds(123, 3) == _chunk_seeds(123, 5)[:3]


class TestPoolContext:
    """_pool_context: honor the requested method or fail loudly.

    A requested-but-unavailable start method must raise instead of
    silently substituting another one — a silent swap masks platform
    differences (a forkserver config "passing" on a fork-only platform
    tests nothing).  The deliberate exception stays: forkserver/spawn
    fall back to fork when ``__main__`` cannot be re-imported, because
    those methods cannot work there at all.
    """

    def test_requested_available_method_is_honored(self):
        from repro.sampler.service import _pool_context

        for method in multiprocessing.get_all_start_methods():
            assert _pool_context(method).get_start_method() == method

    def test_unavailable_method_raises_clear_error(self, monkeypatch):
        from repro.sampler import service

        monkeypatch.setattr(
            service.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        with pytest.raises(ValueError, match="forkserver.*not available"):
            service._pool_context("forkserver")
        with pytest.raises(ValueError, match="available: spawn"):
            service._pool_context("fork")

    def test_unavailable_method_raises_from_executor(self, monkeypatch):
        """The error surfaces through the public executor path too."""
        from repro.sampler import service

        monkeypatch.setattr(
            service.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        sim = make_sim(
            seed=1,
            executor=ProcessPoolExecutor(num_workers=2, start_method="forkserver"),
        )
        with pytest.raises(ValueError, match="forkserver"):
            sim.sample_bitstrings(noisy_bell_circuit(), repetitions=8)

    def test_unimportable_main_falls_back_to_fork(self, monkeypatch):
        from repro.sampler import service

        monkeypatch.setattr(service, "_main_is_importable", lambda: False)
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        assert service._pool_context("forkserver").get_start_method() == "fork"
        assert service._pool_context("spawn").get_start_method() == "fork"

    def test_none_prefers_fork_when_available(self):
        from repro.sampler.service import _pool_context

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        assert _pool_context(None).get_start_method() == "fork"

    def test_auto_default_resolves_to_available_method(self, monkeypatch):
        """The constructor default works on every platform: 'auto' picks
        forkserver where available, the platform default elsewhere."""
        from repro.sampler import executors

        available = multiprocessing.get_all_start_methods()
        default = ProcessPoolExecutor(num_workers=2)
        if "forkserver" in available:
            assert default.start_method == "forkserver"
        else:  # pragma: no cover - platform-dependent
            assert default.start_method is None
        # Simulated spawn-only platform (Windows): no error, no forkserver.
        monkeypatch.setattr(
            executors.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        assert ProcessPoolExecutor(num_workers=2).start_method is None


class TestProbeOverlap:
    """Regression: the probe must overlap with the rest of the batch.

    The old probe path submitted the probe task alone, blocked on its
    result (idling every other worker), and only then submitted the
    remaining tasks.  The fixed path makes ONE submission covering the
    whole batch and calibrates from the probe future's completion
    callback while the other workers are already busy.
    """

    def test_probe_submits_once_covering_all_tasks(self):
        calls = []
        with PoolManager() as manager:
            original = manager.submit

            def spying_submit(key, workers, sm, pf, fn, argses, planes=()):
                calls.append((fn.__name__, len(argses)))
                return original(key, workers, sm, pf, fn, argses, planes=planes)

            manager.submit = spying_submit
            scheduler = AdaptiveScheduler(probe=True)
            sim = make_sim(
                seed=37,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=scheduler,
                ),
            )
            sim.run_batch([bell_circuit() for _ in range(3)], repetitions=8)
        task_calls = [c for c in calls if c[0] != "_warm_worker"]
        assert len(task_calls) == 1, calls
        assert task_calls[0][1] == 3, calls
        # The probe still calibrated, from its completion callback.
        assert scheduler.seconds_per_cost is not None
        assert scheduler.seconds_per_cost > 0

    def test_probe_output_matches_probeless_run(self):
        circuits = [bell_circuit() for _ in range(3)]

        def run(scheduler, manager):
            return make_sim(
                seed=41,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=scheduler,
                ),
            ).run_batch(circuits, repetitions=12)

        with PoolManager() as m1, PoolManager() as m2:
            probed = run(AdaptiveScheduler(probe=True), m1)
            plain = run(AdaptiveScheduler(probe=False), m2)
        for ra, rb in zip(probed, plain):
            for key in ra.measurements:
                np.testing.assert_array_equal(
                    ra.measurements[key], rb.measurements[key]
                )


class TestTaskTimeout:
    """task_timeout: a wedged worker fails loudly instead of hanging."""

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessPoolExecutor(num_workers=2, task_timeout=0)
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessPoolExecutor(num_workers=2, task_timeout=-1.5)

    @pytest.mark.parametrize(
        "make_scheduler",
        [AdaptiveScheduler, WorkStealingScheduler],
        ids=["futures", "stealing"],
    )
    def test_hung_worker_raises_and_kills_pool(self, make_scheduler):
        """Both dispatch modes: a worker stuck in a 600 s sleep trips the
        completion-gap bound promptly, the pool is *killed* (a wedged
        worker never joins), every result plane is released, and the
        manager is left reusable."""
        manager = PoolManager()
        try:
            sim = bgls.Simulator(
                StateVectorSimulationState(QUBITS),
                bgls.act_on,
                _sleepy_probability,
                seed=43,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=make_scheduler(),
                    task_timeout=0.5,
                ),
            )
            start = time.monotonic()
            with pytest.raises(TaskTimeoutError, match="task_timeout"):
                sim.run_batch(
                    [bell_circuit() for _ in range(3)], repetitions=8
                )
            assert time.monotonic() - start < 30
            pids = manager.worker_pids()
            assert pids, "expected the manager to have recorded worker pids"
            deadline = time.monotonic() + 10
            for pid in pids:
                while _pid_alive(pid) and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert not _pid_alive(pid), f"worker {pid} survived timeout"
            assert live_segment_names() == []
            # Reusable: a healthy run after the kill rebuilds cleanly.
            healthy = make_sim(
                seed=43,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method="fork",
                    pool_manager=manager,
                    scheduler=make_scheduler(),
                ),
            ).run_batch([bell_circuit()], repetitions=8)
            assert len(healthy) == 1
        finally:
            manager.shutdown()
