"""Tests for the CH-form stabilizer engine against the dense simulator."""

import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.protocols import act_on, unitary
from repro.states import (
    StabilizerChForm,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)

_SQRT2_INV = 1 / math.sqrt(2)


def ch_and_dense(circuit, qubits):
    """Evolve both representations and return their state vectors."""
    sv = StateVectorSimulationState(qubits)
    ch = StabilizerChFormSimulationState(qubits)
    for op in circuit.all_operations():
        act_on(op, sv)
        act_on(op, ch)
    return sv.state_vector(), ch.state_vector()


class TestInitialState:
    def test_zero_state(self):
        form = StabilizerChForm(3)
        vec = form.state_vector()
        assert vec[0] == pytest.approx(1.0)
        assert np.count_nonzero(vec) == 1

    def test_basis_initial_state(self):
        form = StabilizerChForm(3, initial_state=0b011)
        assert abs(form.inner_product_with_basis_state([0, 1, 1])) == pytest.approx(1.0)

    def test_needs_positive_qubits(self):
        with pytest.raises(ValueError):
            StabilizerChForm(0)


class TestSingleGates:
    """Each primitive, checked exactly (including global phase)."""

    def test_h_on_zero(self):
        form = StabilizerChForm(1)
        form.apply_h(0)
        np.testing.assert_allclose(
            form.state_vector(), [_SQRT2_INV, _SQRT2_INV], atol=1e-12
        )

    def test_h_twice_is_identity(self):
        form = StabilizerChForm(1)
        form.apply_h(0)
        form.apply_h(0)
        np.testing.assert_allclose(form.state_vector(), [1, 0], atol=1e-12)

    def test_x(self):
        form = StabilizerChForm(2)
        form.apply_x(1)
        np.testing.assert_allclose(
            form.state_vector(), [0, 1, 0, 0], atol=1e-12
        )

    def test_z_phase_on_one(self):
        form = StabilizerChForm(1, initial_state=1)
        form.apply_z(0)
        np.testing.assert_allclose(form.state_vector(), [0, -1], atol=1e-12)

    def test_y_on_zero(self):
        form = StabilizerChForm(1)
        form.apply_y(0)
        np.testing.assert_allclose(form.state_vector(), [0, 1j], atol=1e-12)

    def test_s_on_plus(self):
        form = StabilizerChForm(1)
        form.apply_h(0)
        form.apply_s(0)
        np.testing.assert_allclose(
            form.state_vector(), [_SQRT2_INV, 1j * _SQRT2_INV], atol=1e-12
        )

    def test_s_sdg_cancel(self):
        form = StabilizerChForm(1)
        form.apply_h(0)
        form.apply_s(0)
        form.apply_sdg(0)
        np.testing.assert_allclose(
            form.state_vector(), [_SQRT2_INV, _SQRT2_INV], atol=1e-12
        )

    def test_cx_bell(self):
        form = StabilizerChForm(2)
        form.apply_h(0)
        form.apply_cx(0, 1)
        np.testing.assert_allclose(
            form.state_vector(), [_SQRT2_INV, 0, 0, _SQRT2_INV], atol=1e-12
        )

    def test_cz_on_plus_plus(self):
        form = StabilizerChForm(2)
        form.apply_h(0)
        form.apply_h(1)
        form.apply_cz(0, 1)
        np.testing.assert_allclose(
            form.state_vector(), [0.5, 0.5, 0.5, -0.5], atol=1e-12
        )

    def test_cx_needs_distinct_qubits(self):
        form = StabilizerChForm(2)
        with pytest.raises(ValueError):
            form.apply_cx(1, 1)
        with pytest.raises(ValueError):
            form.apply_cz(0, 0)


class TestAgainstDenseSimulator:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_clifford_circuits_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        qs = cirq.LineQubit.range(n)
        circ = cirq.random_clifford_circuit(qs, 25, random_state=rng)
        dense, ch = ch_and_dense(circ, qs)
        np.testing.assert_allclose(dense, ch, atol=1e-8)

    @pytest.mark.parametrize("seed", range(6))
    def test_extended_clifford_gate_set(self, seed):
        """X, Y, Z, S_DAG, SWAP, ISWAP and X/Y/Z half-powers all match."""
        rng = np.random.default_rng(100 + seed)
        qs = cirq.LineQubit.range(4)
        one_q = [cirq.X, cirq.Y, cirq.Z, cirq.H, cirq.S, cirq.S_DAG,
                 cirq.X**0.5, cirq.Y**0.5, cirq.Z**1.5]
        two_q = [cirq.CNOT, cirq.CZ, cirq.SWAP, cirq.ISWAP]
        circ = cirq.Circuit()
        for _ in range(30):
            if rng.random() < 0.4:
                a, b = rng.choice(4, size=2, replace=False)
                circ.append(two_q[int(rng.integers(4))](qs[a], qs[b]))
            else:
                g = one_q[int(rng.integers(len(one_q)))]
                circ.append(g(qs[int(rng.integers(4))]))
        dense, ch = ch_and_dense(circ, qs)
        np.testing.assert_allclose(dense, ch, atol=1e-8)

    def test_probability_matches_dense(self):
        qs = cirq.LineQubit.range(5)
        circ = cirq.random_clifford_circuit(qs, 30, random_state=2)
        sv = StateVectorSimulationState(qs)
        ch = StabilizerChFormSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, sv)
            act_on(op, ch)
        dense_probs = np.abs(sv.state_vector()) ** 2
        for idx in range(32):
            bits = [(idx >> (4 - j)) & 1 for j in range(5)]
            assert ch.probability_of(bits) == pytest.approx(
                dense_probs[idx], abs=1e-10
            )


class TestNorm:
    @pytest.mark.parametrize("seed", range(5))
    def test_omega_magnitude_stays_one(self, seed):
        """Unitary evolution keeps the CH scalar on the unit circle."""
        qs = cirq.LineQubit.range(4)
        circ = cirq.random_clifford_circuit(qs, 40, random_state=seed)
        ch = StabilizerChFormSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, ch)
        assert abs(ch.ch_form.omega) == pytest.approx(1.0, abs=1e-9)

    def test_state_vector_normalized(self):
        qs = cirq.LineQubit.range(4)
        circ = cirq.random_clifford_circuit(qs, 40, random_state=9)
        ch = StabilizerChFormSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, ch)
        assert np.linalg.norm(ch.state_vector()) == pytest.approx(1.0, abs=1e-9)


class TestMeasurement:
    def test_deterministic_outcome(self):
        form = StabilizerChForm(2)
        form.apply_x(0)
        is_random, bit = form.measurement_outcome_info(0)
        assert not is_random
        assert bit == 1

    def test_random_outcome_flagged(self):
        form = StabilizerChForm(1)
        form.apply_h(0)
        is_random, _ = form.measurement_outcome_info(0)
        assert is_random

    def test_projection_collapses(self):
        form = StabilizerChForm(2)
        form.apply_h(0)
        form.apply_cx(0, 1)
        form.project_measurement(0, 1)
        np.testing.assert_allclose(
            np.abs(form.state_vector()) ** 2, [0, 0, 0, 1], atol=1e-9
        )

    def test_projection_impossible_outcome_raises(self):
        form = StabilizerChForm(1)  # |0>
        with pytest.raises(ValueError, match="probability 0"):
            form.project_measurement(0, 1)

    def test_ghz_measurement_correlations(self):
        rng = np.random.default_rng(0)
        outcomes = set()
        for _ in range(50):
            form = StabilizerChForm(3)
            form.apply_h(0)
            form.apply_cx(0, 1)
            form.apply_cx(1, 2)
            bits = tuple(form.measure(q, rng) for q in range(3))
            outcomes.add(bits)
        assert outcomes == {(0, 0, 0), (1, 1, 1)}

    def test_measurement_statistics_match_born(self):
        qs = cirq.LineQubit.range(3)
        circ = cirq.random_clifford_circuit(qs, 20, random_state=13)
        ch = StabilizerChFormSimulationState(qs, seed=0)
        for op in circ.all_operations():
            act_on(op, ch)
        probs = np.abs(ch.state_vector()) ** 2
        rng = np.random.default_rng(1)
        counts = np.zeros(8)
        reps = 600
        for _ in range(reps):
            trial = ch.ch_form.copy()
            bits = [trial.measure(q, rng) for q in range(3)]
            counts[int("".join(map(str, bits)), 2)] += 1
        tv = 0.5 * np.abs(counts / reps - probs).sum()
        assert tv < 0.08


class TestWrapperState:
    def test_rejects_non_clifford(self):
        qs = cirq.LineQubit.range(1)
        ch = StabilizerChFormSimulationState(qs)
        with pytest.raises(ValueError, match="not a Clifford"):
            act_on(cirq.T(qs[0]), ch)

    def test_rejects_channels(self):
        qs = cirq.LineQubit.range(1)
        ch = StabilizerChFormSimulationState(qs)
        with pytest.raises(ValueError):
            act_on(cirq.depolarize(0.1)(qs[0]), ch)

    def test_rejects_raw_unitary(self):
        qs = cirq.LineQubit.range(1)
        ch = StabilizerChFormSimulationState(qs)
        with pytest.raises(ValueError):
            ch.apply_unitary(unitary(cirq.H), [0])

    def test_copy_independent(self):
        qs = cirq.LineQubit.range(2)
        ch = StabilizerChFormSimulationState(qs)
        copy = ch.copy()
        act_on(cirq.X(qs[0]), copy)
        assert ch.probability_of([0, 0]) == pytest.approx(1.0)
        assert copy.probability_of([1, 0]) == pytest.approx(1.0)

    def test_project_wrapper(self):
        qs = cirq.LineQubit.range(2)
        ch = StabilizerChFormSimulationState(qs)
        act_on(cirq.H(qs[0]), ch)
        act_on(cirq.CNOT(qs[0], qs[1]), ch)
        ch.project([0], [1])
        assert ch.probability_of([1, 1]) == pytest.approx(1.0)

    def test_depth_independent_amplitude_cost(self):
        """Amplitude queries touch only n-sized rows, not the circuit depth.

        Functional proxy: the CH data dimensions depend only on n.
        """
        qs = cirq.LineQubit.range(6)
        shallow = StabilizerChFormSimulationState(qs)
        deep = StabilizerChFormSimulationState(qs)
        for op in cirq.random_clifford_circuit(qs, 5, random_state=1).all_operations():
            act_on(op, shallow)
        for op in cirq.random_clifford_circuit(qs, 200, random_state=1).all_operations():
            act_on(op, deep)
        assert shallow.ch_form.F.shape == deep.ch_form.F.shape == (6, 6)
