"""Smoke tests: the fast example scripts must run to completion.

Only the cheap examples run here (the scaling/QAOA ones are exercised by
the benchmark harness); each is executed in-process via runpy so import
errors, API drift, or broken output paths fail the suite.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_quickstart_runs_and_shows_only_ghz_outcomes():
    out = run_example("quickstart.py")
    assert "00" in out and "11" in out
    assert "01 |" not in out and "10 |" not in out


def test_qasm_interop_runs():
    out = run_example("qasm_interop.py")
    assert "OPENQASM" in out


def test_grover_example_finds_marked_item():
    out = run_example("grover_search.py")
    assert "10110" in out
    assert "Fraction landing on the marked item" in out


def test_phase_estimation_example_estimates():
    out = run_example("phase_estimation.py")
    assert "0.625" in out  # exactly representable case recovered


def test_xeb_supremacy_example_streams_and_verifies():
    out = run_example("xeb_supremacy.py")
    assert "MergeRotations" in out
    assert "Warm-pool inits for the whole ensemble: 1" in out
    assert "Ensemble fidelity" in out
    assert "Porter-Thomas check" in out
