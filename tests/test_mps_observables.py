"""Tests for MPS observables: inner products, Pauli expectations, entropy."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.mps import (
    MPSOptions,
    MPSState,
    bond_dimension_profile,
    entanglement_entropy,
    inner_product,
    pauli_expectation,
    schmidt_values,
    truncation_infidelity,
)
from repro.protocols import act_on


def evolve(circuit, qubits, options=None):
    state = MPSState(qubits, options=options)
    for op in circuit.all_operations():
        act_on(op, state)
    return state


def bell_state(qubits):
    circuit = cirq.Circuit(
        cirq.H.on(qubits[0]), cirq.CNOT.on(qubits[0], qubits[1])
    )
    return evolve(circuit, qubits)


class TestInnerProduct:
    def test_self_overlap_is_norm(self):
        qs = cirq.LineQubit.range(2)
        state = bell_state(qs)
        assert inner_product(state, state) == pytest.approx(1.0, abs=1e-9)

    def test_orthogonal_basis_states(self):
        qs = cirq.LineQubit.range(2)
        a = MPSState(qs, initial_state=0)
        b = MPSState(qs, initial_state=3)
        assert inner_product(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_matches_dense_inner_product(self):
        qs = cirq.LineQubit.range(3)
        c1 = cirq.generate_random_circuit(qs, 6, random_state=1)
        c2 = cirq.generate_random_circuit(qs, 6, random_state=2)
        m1, m2 = evolve(c1, qs), evolve(c2, qs)
        dense1 = c1.final_state_vector(qubit_order=qs)
        dense2 = c2.final_state_vector(qubit_order=qs)
        want = complex(np.vdot(dense1, dense2))
        got = inner_product(m1, m2)
        assert got == pytest.approx(want, abs=1e-8)

    def test_rejects_mismatched_registers(self):
        a = MPSState(cirq.LineQubit.range(2))
        b = MPSState(cirq.LineQubit.range(3))
        with pytest.raises(ValueError, match="register"):
            inner_product(a, b)


class TestPauliExpectation:
    def test_z_on_zero_state(self):
        qs = cirq.LineQubit.range(1)
        state = MPSState(qs)
        assert pauli_expectation(state, {qs[0]: "Z"}) == pytest.approx(1.0)

    def test_z_on_one_state(self):
        qs = cirq.LineQubit.range(1)
        state = MPSState(qs, initial_state=1)
        assert pauli_expectation(state, {qs[0]: "Z"}) == pytest.approx(-1.0)

    def test_x_on_plus_state(self):
        qs = cirq.LineQubit.range(1)
        state = evolve(cirq.Circuit(cirq.H.on(qs[0])), qs)
        assert pauli_expectation(state, {qs[0]: "X"}) == pytest.approx(1.0)

    def test_y_on_y_eigenstate(self):
        qs = cirq.LineQubit.range(1)
        state = evolve(cirq.Circuit(cirq.H.on(qs[0]), cirq.S.on(qs[0])), qs)
        assert pauli_expectation(state, {qs[0]: "Y"}) == pytest.approx(1.0)

    def test_zz_correlation_of_bell_pair(self):
        qs = cirq.LineQubit.range(2)
        state = bell_state(qs)
        assert pauli_expectation(state, {qs[0]: "Z", qs[1]: "Z"}) == pytest.approx(1.0)
        assert pauli_expectation(state, {qs[0]: "X", qs[1]: "X"}) == pytest.approx(1.0)
        assert pauli_expectation(state, {qs[0]: "Z"}) == pytest.approx(0.0, abs=1e-9)

    def test_identity_entries_ignored(self):
        qs = cirq.LineQubit.range(2)
        state = bell_state(qs)
        assert pauli_expectation(
            state, {qs[0]: "I", qs[1]: "Z"}
        ) == pytest.approx(0.0, abs=1e-9)

    def test_matches_dense_on_random_circuit(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 8, random_state=5)
        mps = evolve(circuit, qs)
        psi = circuit.final_state_vector(qubit_order=qs)
        z = np.diag([1.0, -1.0])
        op = np.kron(np.kron(z, np.eye(2)), z)  # Z0 Z2
        want = float(np.real(psi.conj() @ (op @ psi)))
        got = pauli_expectation(mps, {qs[0]: "Z", qs[2]: "Z"})
        assert got == pytest.approx(want, abs=1e-8)

    def test_rejects_unknown_pauli(self):
        qs = cirq.LineQubit.range(1)
        with pytest.raises(ValueError, match="Unknown Pauli"):
            pauli_expectation(MPSState(qs), {qs[0]: "W"})


class TestEntanglement:
    def test_product_state_has_zero_entropy(self):
        qs = cirq.LineQubit.range(3)
        state = evolve(cirq.Circuit(cirq.H.on(q) for q in qs), qs)
        for cut in (1, 2):
            assert entanglement_entropy(state, cut) == pytest.approx(0.0, abs=1e-9)

    def test_bell_pair_has_one_bit(self):
        qs = cirq.LineQubit.range(2)
        state = bell_state(qs)
        assert entanglement_entropy(state, 1) == pytest.approx(1.0, abs=1e-9)

    def test_ghz_is_one_bit_at_every_cut(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.Circuit(cirq.H.on(qs[0]))
        for a, b in zip(qs, qs[1:]):
            circuit.append(cirq.CNOT.on(a, b))
        state = evolve(circuit, qs)
        for cut in (1, 2, 3):
            assert entanglement_entropy(state, cut) == pytest.approx(1.0, abs=1e-9)

    def test_schmidt_values_are_normalized(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 6, random_state=9)
        state = evolve(circuit, qs)
        lam = schmidt_values(state, 1)
        assert np.linalg.norm(lam) == pytest.approx(1.0, abs=1e-9)

    def test_rejects_bad_cut(self):
        qs = cirq.LineQubit.range(2)
        state = MPSState(qs)
        with pytest.raises(ValueError, match="cut"):
            schmidt_values(state, 0)
        with pytest.raises(ValueError, match="cut"):
            schmidt_values(state, 2)


class TestDiagnostics:
    def test_initial_bond_profile_is_trivial(self):
        qs = cirq.LineQubit.range(4)
        assert bond_dimension_profile(MPSState(qs)) == [1, 1, 1, 1]

    def test_entangling_grows_bonds(self):
        qs = cirq.LineQubit.range(2)
        state = bell_state(qs)
        assert bond_dimension_profile(state) == [2, 2]

    def test_no_truncation_means_zero_infidelity(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.generate_random_circuit(qs, 5, random_state=2)
        state = evolve(circuit, qs)
        assert truncation_infidelity(state) == pytest.approx(0.0, abs=1e-12)

    def test_hard_bond_cap_accumulates_infidelity(self):
        qs = cirq.LineQubit.range(6)
        circuit = cirq.generate_random_circuit(qs, 12, random_state=3)
        capped = evolve(circuit, qs, options=MPSOptions(max_bond=1))
        assert truncation_infidelity(capped) > 0.01
