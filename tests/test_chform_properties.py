"""Property-based tests (hypothesis) for the CH-form stabilizer engine.

The central invariant: for ANY sequence of Clifford gates, the CH form and
the dense state vector evolve to exactly the same wavefunction (including
global phase), the state stays normalized, and amplitudes obey the Born
rule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.protocols import act_on
from repro.states import (
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)

# A gate program is a list of (gate_id, qubit_choices) decoded against n.
_ONE_QUBIT = [cirq.H, cirq.S, cirq.S_DAG, cirq.X, cirq.Y, cirq.Z]
_TWO_QUBIT = [cirq.CNOT, cirq.CZ, cirq.SWAP, cirq.ISWAP]


@st.composite
def clifford_programs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    length = draw(st.integers(min_value=0, max_value=30))
    ops = []
    for _ in range(length):
        if n >= 2 and draw(st.booleans()):
            gate = draw(st.sampled_from(_TWO_QUBIT))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append((gate, (a, b)))
        else:
            gate = draw(st.sampled_from(_ONE_QUBIT))
            ops.append((gate, (draw(st.integers(0, n - 1)),)))
    return n, ops


def _evolve_both(n, ops):
    qs = cirq.LineQubit.range(n)
    sv = StateVectorSimulationState(qs)
    ch = StabilizerChFormSimulationState(qs)
    for gate, axes in ops:
        op = gate.on(*(qs[a] for a in axes))
        act_on(op, sv)
        act_on(op, ch)
    return sv, ch


@given(clifford_programs())
@settings(max_examples=120, deadline=None)
def test_ch_form_matches_dense_exactly(program):
    n, ops = program
    sv, ch = _evolve_both(n, ops)
    np.testing.assert_allclose(sv.state_vector(), ch.state_vector(), atol=1e-8)


@given(clifford_programs())
@settings(max_examples=60, deadline=None)
def test_ch_form_stays_normalized(program):
    n, ops = program
    _, ch = _evolve_both(n, ops)
    assert abs(np.linalg.norm(ch.state_vector()) - 1.0) < 1e-9
    assert abs(abs(ch.ch_form.omega) - 1.0) < 1e-9


@given(clifford_programs(), st.integers(min_value=0, max_value=31))
@settings(max_examples=60, deadline=None)
def test_born_probabilities_sum_to_one_and_match(program, which):
    n, ops = program
    sv, ch = _evolve_both(n, ops)
    dense_probs = np.abs(sv.state_vector()) ** 2
    idx = which % (2**n)
    bits = [(idx >> (n - 1 - j)) & 1 for j in range(n)]
    assert abs(ch.probability_of(bits) - dense_probs[idx]) < 1e-9
    total = sum(
        ch.probability_of([(i >> (n - 1 - j)) & 1 for j in range(n)])
        for i in range(2**n)
    )
    assert abs(total - 1.0) < 1e-8


@given(clifford_programs())
@settings(max_examples=40, deadline=None)
def test_measurement_projection_consistency(program):
    """Projecting on a sampled outcome renormalizes and zeroes the rest."""
    n, ops = program
    _, ch = _evolve_both(n, ops)
    rng = np.random.default_rng(0)
    form = ch.ch_form
    bits = [form.measure(q, rng) for q in range(n)]
    # After measuring every qubit the state is the basis state |bits>.
    amp = form.inner_product_with_basis_state(bits)
    assert abs(abs(amp) - 1.0) < 1e-9


@given(clifford_programs())
@settings(max_examples=40, deadline=None)
def test_copy_isolation(program):
    n, ops = program
    _, ch = _evolve_both(n, ops)
    original = ch.state_vector()
    clone = ch.copy()
    act_on(cirq.X(cirq.LineQubit(0)), clone)
    np.testing.assert_allclose(ch.state_vector(), original, atol=1e-12)
