"""Property-based tests (hypothesis) for the Pauli-string algebra.

Every algebraic law is checked against the dense matrix representation,
which is ground truth by construction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.circuits import PauliString, PauliSum

N = 3
QUBITS = cirq.LineQubit.range(N)


@st.composite
def pauli_strings(draw):
    factors = {}
    for q in QUBITS:
        name = draw(st.sampled_from("IXYZ"))
        if name != "I":
            factors[q] = name
    coeff_re = draw(st.sampled_from([1.0, -1.0, 0.5, 2.0]))
    coeff_im = draw(st.sampled_from([0.0, 1.0, -0.5]))
    return PauliString(factors, complex(coeff_re, coeff_im))


@given(pauli_strings(), pauli_strings())
@settings(max_examples=150, deadline=None)
def test_product_matches_matrix_product(a, b):
    got = (a * b).matrix(QUBITS)
    want = a.matrix(QUBITS) @ b.matrix(QUBITS)
    np.testing.assert_allclose(got, want, atol=1e-12)


@given(pauli_strings(), pauli_strings(), pauli_strings())
@settings(max_examples=100, deadline=None)
def test_product_associative(a, b, c):
    left = ((a * b) * c).matrix(QUBITS)
    right = (a * (b * c)).matrix(QUBITS)
    np.testing.assert_allclose(left, right, atol=1e-12)


@given(pauli_strings(), pauli_strings())
@settings(max_examples=150, deadline=None)
def test_commutes_with_matches_matrices(a, b):
    ma, mb = a.matrix(QUBITS), b.matrix(QUBITS)
    commutator = ma @ mb - mb @ ma
    matrix_commutes = bool(np.allclose(commutator, 0, atol=1e-12))
    zero_coeff = abs(a.coefficient * b.coefficient) < 1e-12
    assert a.commutes_with(b) == matrix_commutes or zero_coeff


@given(pauli_strings())
@settings(max_examples=100, deadline=None)
def test_square_is_scaled_identity(a):
    square = a * a
    assert square.weight == 0
    np.testing.assert_allclose(
        square.matrix(QUBITS),
        a.coefficient**2 * np.eye(2**N),
        atol=1e-12,
    )


@given(pauli_strings(), pauli_strings())
@settings(max_examples=100, deadline=None)
def test_sum_matrix_is_matrix_sum(a, b):
    got = (a + b).matrix(QUBITS)
    want = a.matrix(QUBITS) + b.matrix(QUBITS)
    np.testing.assert_allclose(got, want, atol=1e-12)


@given(st.lists(pauli_strings(), min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_sum_collects_like_terms_exactly(terms):
    total = PauliSum(terms)
    want = sum((t.matrix(QUBITS) for t in terms), np.zeros((2**N, 2**N), dtype=complex))
    np.testing.assert_allclose(total.matrix(QUBITS), want, atol=1e-12)


@given(pauli_strings())
@settings(max_examples=80, deadline=None)
def test_hermitian_iff_real_coefficient(a):
    m = a.matrix(QUBITS)
    is_hermitian = bool(np.allclose(m, m.conj().T, atol=1e-12))
    expect = abs(a.coefficient.imag) < 1e-12 or abs(a.coefficient) < 1e-12
    assert is_hermitian == expect


@given(pauli_strings())
@settings(max_examples=60, deadline=None)
def test_basis_change_diagonalizes(a):
    """After the measurement basis change, the string acts diagonally."""
    ops = a.measurement_basis_change()
    circuit = cirq.Circuit()
    circuit.append(ops)
    v = (
        circuit.unitary(qubit_order=QUBITS)
        if ops
        else np.eye(2**N, dtype=complex)
    )
    rotated = v @ a.matrix(QUBITS) @ v.conj().T
    off_diag = rotated - np.diag(np.diagonal(rotated))
    np.testing.assert_allclose(off_diag, 0, atol=1e-10)
