"""Property tests for the packed backends' snapshot/restore hooks.

The warm-pool executor ships the initial state to workers as the registry
``snapshot`` payload — raw ``uint64`` words for the bit-packed tableau and
CH-form backends, raw tensor bytes plus bond metadata for the MPS backend.
These tests pin the hook contract:

* **Round-trip fidelity** — after a random Clifford prefix, restoring the
  payload reproduces the exact engine state, validated against the
  retained unpacked reference engines in :mod:`repro.states.reference`
  (the same oracles the bit-packing kernels are pinned to), at widths
  63/64/65 spanning the ``uint64`` word boundary.
* **Independence** — the restored state owns writable copies; mutating it
  never touches the snapshotted original.
* **Payload economy** — the payload pickles strictly smaller than the
  state object itself (that is the point of shipping raw words), and the
  payload tuples are hashable so the warm pool can key on them.
* **Type safety** — a subclass inheriting a registered parent's
  descriptor is *not* snapshotted (restore would lose the subclass), it
  falls back to object pickling.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as bgls
from repro import circuits as cirq
from repro.sampler.service import _WorkerPayload
from repro.states import capabilities_for
from repro.states.chform import StabilizerChForm
from repro.states.reference import (
    UnpackedCliffordTableau,
    UnpackedStabilizerChForm,
)
from repro.states.stabilizer import StabilizerChFormSimulationState
from repro.states.tableau import CliffordTableau, CliffordTableauSimulationState

WORD_BOUNDARY_WIDTHS = (63, 64, 65)

_ONE_QUBIT = ["h", "s", "sdg", "x", "y", "z"]
_TWO_QUBIT = ["cx", "cz"]


def random_ops(n, length, rng):
    """A random Clifford primitive stream shared by packed + reference."""
    ops = []
    for _ in range(length):
        if n >= 2 and rng.random() < 0.5:
            name = _TWO_QUBIT[rng.integers(len(_TWO_QUBIT))]
            a = int(rng.integers(n))
            b = int(rng.integers(n - 1))
            if b >= a:
                b += 1
            ops.append((name, (a, b)))
        else:
            name = _ONE_QUBIT[rng.integers(len(_ONE_QUBIT))]
            ops.append((name, (int(rng.integers(n)),)))
    return ops


def apply_ops(engine, ops):
    for name, args in ops:
        getattr(engine, f"apply_{name}")(*args)


@st.composite
def clifford_prefixes(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    length = draw(st.integers(min_value=0, max_value=25))
    return n, random_ops(n, length, np.random.default_rng(seed))


class TestTableauRoundTrip:
    @given(clifford_prefixes())
    @settings(max_examples=40, deadline=None)
    def test_to_from_words_is_exact(self, prefix):
        n, ops = prefix
        packed = CliffordTableau(n)
        apply_ops(packed, ops)
        restored = CliffordTableau.from_words(*packed.to_words())
        assert restored == packed
        np.testing.assert_array_equal(restored.x[: 2 * n], packed.x[: 2 * n])
        np.testing.assert_array_equal(restored.z[: 2 * n], packed.z[: 2 * n])

    @pytest.mark.parametrize("n", WORD_BOUNDARY_WIDTHS)
    def test_word_boundary_widths_match_reference(self, n):
        rng = np.random.default_rng(100 + n)
        ops = random_ops(n, 60, rng)
        packed = CliffordTableau(n)
        reference = UnpackedCliffordTableau(n)
        apply_ops(packed, ops)
        apply_ops(reference, ops)
        restored = CliffordTableau.from_words(*packed.to_words())
        np.testing.assert_array_equal(restored.x[: 2 * n], reference.x[: 2 * n])
        np.testing.assert_array_equal(restored.z[: 2 * n], reference.z[: 2 * n])
        np.testing.assert_array_equal(restored.r[: 2 * n], reference.r[: 2 * n])
        # The restored engine answers probability queries identically.
        for _ in range(3):
            bits = list(rng.integers(0, 2, n))
            assert restored.probability_of(bits) == pytest.approx(
                reference.probability_of(bits), abs=1e-12
            )

    def test_restored_state_is_independent(self):
        packed = CliffordTableau(5)
        apply_ops(packed, random_ops(5, 20, np.random.default_rng(0)))
        before = packed.copy()
        restored = CliffordTableau.from_words(*packed.to_words())
        restored.apply_h(0)
        restored.apply_cx(1, 2)
        assert packed == before
        # Scratch row is functional on the restored copy.
        assert restored.deterministic_outcome(0) in (None, 0, 1)


class TestChFormRoundTrip:
    @given(clifford_prefixes())
    @settings(max_examples=40, deadline=None)
    def test_to_from_words_is_exact(self, prefix):
        n, ops = prefix
        packed = StabilizerChForm(n)
        apply_ops(packed, ops)
        restored = StabilizerChForm.from_words(*packed.to_words())
        np.testing.assert_array_equal(restored.F, packed.F)
        np.testing.assert_array_equal(restored.G, packed.G)
        np.testing.assert_array_equal(restored.M, packed.M)
        np.testing.assert_array_equal(restored.gamma, packed.gamma)
        np.testing.assert_array_equal(restored.v, packed.v)
        np.testing.assert_array_equal(restored.s, packed.s)
        assert restored.omega == packed.omega

    @pytest.mark.parametrize("n", WORD_BOUNDARY_WIDTHS)
    def test_word_boundary_widths_match_reference(self, n):
        rng = np.random.default_rng(200 + n)
        ops = random_ops(n, 60, rng)
        packed = StabilizerChForm(n)
        reference = UnpackedStabilizerChForm(n)
        apply_ops(packed, ops)
        apply_ops(reference, ops)
        restored = StabilizerChForm.from_words(*packed.to_words())
        np.testing.assert_array_equal(restored.F, reference.F)
        np.testing.assert_array_equal(restored.G, reference.G)
        np.testing.assert_array_equal(restored.M, reference.M)
        np.testing.assert_array_equal(restored.gamma, reference.gamma)
        np.testing.assert_array_equal(restored.v, reference.v)
        np.testing.assert_array_equal(restored.s, reference.s)
        assert restored.omega == pytest.approx(reference.omega, abs=1e-12)
        for _ in range(3):
            bits = list(rng.integers(0, 2, n))
            expected = abs(reference.inner_product_with_basis_state(bits)) ** 2
            assert restored.probability_of(bits) == pytest.approx(
                expected, abs=1e-12
            )

    def test_restored_state_is_independent(self):
        packed = StabilizerChForm(5)
        apply_ops(packed, random_ops(5, 20, np.random.default_rng(1)))
        words = packed.to_words()
        restored = StabilizerChForm.from_words(*words)
        restored.apply_h(0)
        restored.apply_s(1)
        np.testing.assert_array_equal(
            StabilizerChForm.from_words(*packed.to_words()).F, packed.F
        )
        assert packed.to_words() == words


class TestMPSRoundTrip:
    """The MPS packed payload: raw tensor bytes + bond metadata."""

    @staticmethod
    def entangled_mps(n, seed=0, options=None):
        from repro.mps import MPSOptions, MPSState

        qubits = cirq.LineQubit.range(n)
        state = MPSState(qubits, options=options)
        rng = np.random.default_rng(seed)
        for k in range(n):
            bgls.act_on(cirq.H.on(qubits[k]), state)
        for _ in range(2 * n):
            a = int(rng.integers(n - 1))
            bgls.act_on(cirq.CNOT(qubits[a], qubits[a + 1]), state)
            bgls.act_on(
                cirq.Rx(float(rng.random())).on(qubits[int(rng.integers(n))]),
                state,
            )
        return state

    @pytest.mark.parametrize("n", (2, 5, 9))
    def test_roundtrip_preserves_amplitudes(self, n):
        from repro.mps import MPSState

        state = self.entangled_mps(n, seed=n)
        caps = capabilities_for(MPSState)
        assert caps.snapshot is not None and caps.restore is not None
        restored = caps.restore(caps.snapshot(state))
        assert type(restored) is MPSState
        assert restored.qubits == state.qubits
        assert restored.options == state.options
        np.testing.assert_allclose(
            restored.state_vector(), state.state_vector(), atol=1e-12
        )
        assert restored.estimated_fidelity == state.estimated_fidelity

    def test_restored_state_keeps_evolving_without_bond_collisions(self):
        """Bond metadata must ship: the restored network's new bonds must
        not collide with the shipped ones (the bond-name counter)."""
        from repro.mps import MPSState

        state = self.entangled_mps(6, seed=1)
        caps = capabilities_for(MPSState)
        restored = caps.restore(caps.snapshot(state))
        reference = state.copy(seed=0)
        qubits = state.qubits
        for a, b in ((0, 1), (2, 3), (1, 2), (4, 5)):
            bgls.act_on(cirq.CNOT(qubits[a], qubits[b]), restored)
            bgls.act_on(cirq.CNOT(qubits[a], qubits[b]), reference)
        np.testing.assert_allclose(
            restored.state_vector(), reference.state_vector(), atol=1e-10
        )

    def test_truncation_options_round_trip(self):
        from repro.mps import MPSOptions, MPSState

        options = MPSOptions(max_bond=2, cutoff=1e-6, renormalize=False)
        state = self.entangled_mps(6, seed=2, options=options)
        caps = capabilities_for(MPSState)
        restored = caps.restore(caps.snapshot(state))
        assert restored.options == options
        assert restored.estimated_fidelity == state.estimated_fidelity

    def test_restored_tensors_are_independent_and_writable(self):
        from repro.mps import MPSState

        state = self.entangled_mps(4, seed=3)
        caps = capabilities_for(MPSState)
        payload = caps.snapshot(state)
        restored = caps.restore(payload)
        before = state.state_vector().copy()
        bgls.act_on(cirq.X.on(state.qubits[0]), restored)
        restored.renormalize()
        np.testing.assert_allclose(state.state_vector(), before, atol=1e-14)
        assert caps.snapshot(state) == payload

    @pytest.mark.parametrize("n", (4, 8, 16))
    def test_payload_pickles_smaller_than_state(self, n):
        from repro.mps import MPSState

        state = self.entangled_mps(n, seed=n)
        caps = capabilities_for(MPSState)
        payload_bytes = len(pickle.dumps(caps.snapshot(state)))
        object_bytes = len(pickle.dumps(state))
        assert payload_bytes < object_bytes, (
            f"MPS n={n}: payload {payload_bytes}B should beat pickled "
            f"object {object_bytes}B"
        )

    def test_payload_is_hashable_and_content_keyed(self):
        from repro.mps import MPSState

        qubits = cirq.LineQubit.range(5)
        a, b = MPSState(qubits), MPSState(qubits)
        caps = capabilities_for(MPSState)
        pa, pb = caps.snapshot(a), caps.snapshot(b)
        assert pa == pb
        assert hash(pa) == hash(pb)
        bgls.act_on(cirq.H.on(qubits[2]), b)
        assert caps.snapshot(b) != pa

    def test_subclass_falls_back_to_object_pickling(self):
        from repro import born
        from repro.mps import MPSState

        class TaggedMPSState(MPSState):
            pass

        qubits = cirq.LineQubit.range(3)
        sim = bgls.Simulator(
            TaggedMPSState(qubits),
            bgls.act_on,
            born.compute_probability_mps,
        )
        payload = _WorkerPayload(sim, plan=object())
        assert payload.restore is None
        assert type(payload.state_payload) is TaggedMPSState


class TestRegistryHooks:
    """The wrapper-level snapshot/restore functions the registry ships."""

    @pytest.mark.parametrize(
        "state_cls", [CliffordTableauSimulationState, StabilizerChFormSimulationState]
    )
    @pytest.mark.parametrize("n", WORD_BOUNDARY_WIDTHS)
    def test_roundtrip_through_registry(self, state_cls, n):
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(qubits, 6, random_state=n)
        state = state_cls(qubits)
        for op in circuit.all_operations():
            bgls.act_on(op, state)
        caps = capabilities_for(state_cls)
        assert caps.snapshot is not None and caps.restore is not None
        payload = caps.snapshot(state)
        restored = caps.restore(payload)
        assert type(restored) is state_cls
        assert restored.qubits == state.qubits
        rng = np.random.default_rng(7)
        for _ in range(4):
            bits = list(rng.integers(0, 2, n))
            assert restored.probability_of(bits) == pytest.approx(
                state.probability_of(bits), abs=1e-12
            )
        # The restored wrapper is fully functional: gates + measurement.
        bgls.act_on(cirq.H.on(qubits[0]), restored)
        assert restored.measure([0])[0] in (0, 1)

    @pytest.mark.parametrize(
        "state_cls", [CliffordTableauSimulationState, StabilizerChFormSimulationState]
    )
    @pytest.mark.parametrize("n", WORD_BOUNDARY_WIDTHS)
    def test_payload_pickles_smaller_than_state(self, state_cls, n):
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(qubits, 6, random_state=n)
        state = state_cls(qubits)
        for op in circuit.all_operations():
            bgls.act_on(op, state)
        caps = capabilities_for(state_cls)
        payload_bytes = len(pickle.dumps(caps.snapshot(state)))
        object_bytes = len(pickle.dumps(state))
        assert payload_bytes < object_bytes, (
            f"{state_cls.__name__} n={n}: payload {payload_bytes}B should "
            f"beat pickled object {object_bytes}B"
        )

    def test_payload_is_hashable_and_key_stable(self):
        """Warm-pool keying needs hashable, content-equal payloads."""
        qubits = cirq.LineQubit.range(17)
        a = CliffordTableauSimulationState(qubits)
        b = CliffordTableauSimulationState(qubits)
        caps = capabilities_for(CliffordTableauSimulationState)
        pa, pb = caps.snapshot(a), caps.snapshot(b)
        assert pa == pb
        assert hash(pa) == hash(pb)
        b.tableau.apply_h(3)
        assert caps.snapshot(b) != pa

    def test_subclass_falls_back_to_object_pickling(self):
        """Restoring a parent payload would lose the subclass type, so the
        worker payload must pickle the object instead of snapshotting."""

        class TaggedTableauState(CliffordTableauSimulationState):
            pass

        qubits = cirq.LineQubit.range(3)
        from repro import born

        sim = bgls.Simulator(
            TaggedTableauState(qubits),
            bgls.act_on,
            born.compute_probability_tableau,
        )
        payload = _WorkerPayload(sim, plan=object())
        assert payload.restore is None
        assert type(payload.state_payload) is TaggedTableauState
