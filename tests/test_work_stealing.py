"""Work-stealing dispatch: geometry, parity, calibration, failure paths.

The placement-vs-geometry contract under test: a
:class:`~repro.sampler.schedule.WorkStealingScheduler` may let any idle
worker pull any task at runtime, but the task *list* — chunk geometry
and per-chunk ``SeedSequence([seed, point, chunk])`` streams — is a
deterministic function of static inputs, so stealing output must be
bit-for-bit identical to the serial path (unsplit schedules), to an
in-process replay of the same schedule (split schedules), and to
future-per-task :class:`~repro.sampler.schedule.AdaptiveScheduler`
dispatch of the same geometry — on all five backends, both transports,
every start method.
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.sampler import (
    AdaptiveScheduler,
    PoolManager,
    ProcessPoolExecutor,
    WorkStealingScheduler,
    estimate_cost,
)
from repro.sampler.calibration import CalibrationTable
from repro.sampler.executors import _run_task_in_process
from repro.sampler.result_planes import live_segment_names
from repro.sampler.schedule import BatchEntry
from repro.sampler.service import _base_seed
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def pool_start_methods():
    import multiprocessing
    import os

    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return methods or [available[0]]


START_METHODS = pool_start_methods()

N = 3
QUBITS = cirq.LineQubit.range(N)


def clifford_circuit(depth):
    circuit = cirq.Circuit(cirq.H(QUBITS[0]))
    for _ in range(depth):
        circuit.append(cirq.CNOT(QUBITS[0], QUBITS[1]))
        circuit.append(cirq.S(QUBITS[2]))
        circuit.append(cirq.CNOT(QUBITS[1], QUBITS[2]))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


BACKENDS = [
    pytest.param(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        id="state_vector",
    ),
    pytest.param(
        lambda: DensityMatrixSimulationState(QUBITS),
        born.compute_probability_density_matrix,
        id="density_matrix",
    ),
    pytest.param(
        lambda: StabilizerChFormSimulationState(QUBITS),
        born.compute_probability_stabilizer_state,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableauSimulationState(QUBITS),
        born.compute_probability_tableau,
        id="clifford_tableau",
    ),
    pytest.param(
        lambda: MPSState(QUBITS),
        born.compute_probability_mps,
        id="mps",
    ),
]


def make_sim(make_state, prob_fn, seed, executor=None):
    return bgls.Simulator(
        make_state(), bgls.act_on, prob_fn, seed=seed, executor=executor
    )


def stealing_executor(manager, scheduler=None, start_method=None, **kwargs):
    return ProcessPoolExecutor(
        num_workers=2,
        start_method=start_method or START_METHODS[0],
        pool_manager=manager,
        scheduler=(
            scheduler if scheduler is not None else WorkStealingScheduler()
        ),
        **kwargs,
    )


def assert_results_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert set(ra.measurements) == set(rb.measurements)
        for key in ra.measurements:
            np.testing.assert_array_equal(
                ra.measurements[key], rb.measurements[key]
            )


def entries_from_costs(costs):
    return [BatchEntry(i, i, None, cost) for i, cost in enumerate(costs)]


def geometry(tasks):
    return [
        (t.point_index, t.chunk_index, t.num_chunks, t.repetitions)
        for t in tasks
    ]


def _raising_probability(state, bitstring):
    raise ValueError("injected worker failure")


@pytest.fixture
def manager():
    mgr = PoolManager()
    yield mgr
    mgr.shutdown()


class TestWorkStealingGeometry:
    def test_flags_and_validation(self):
        assert WorkStealingScheduler().work_stealing is True
        assert AdaptiveScheduler().work_stealing is False
        assert WorkStealingScheduler().granularity == 4
        with pytest.raises(ValueError, match="granularity"):
            WorkStealingScheduler(granularity=0)

    def test_granularity_one_matches_adaptive_geometry(self):
        costs = [7.0, 2.0, 9.0, 9.0, 1.0]
        adaptive = AdaptiveScheduler().schedule(
            entries_from_costs(costs), repetitions=24, num_workers=3
        )
        stealing = WorkStealingScheduler(granularity=1).schedule(
            entries_from_costs(costs), repetitions=24, num_workers=3
        )
        assert geometry(adaptive) == geometry(stealing)

    def test_granularity_pre_splits_equal_cost_points(self):
        """Adaptive leaves an equal-cost batch whole; stealing pre-splits
        every point so there is something to steal."""
        adaptive = AdaptiveScheduler().schedule(
            entries_from_costs([4.0] * 3), repetitions=32, num_workers=2
        )
        assert all(t.num_chunks == 1 for t in adaptive)
        stealing = WorkStealingScheduler(granularity=4).schedule(
            entries_from_costs([4.0] * 3), repetitions=32, num_workers=2
        )
        assert all(t.num_chunks == 4 for t in stealing)
        for point in range(3):
            chunks = [t for t in stealing if t.point_index == point]
            assert sorted(t.chunk_index for t in chunks) == [0, 1, 2, 3]
            assert sum(t.repetitions for t in chunks) == 32

    def test_granularity_capped_by_min_chunk_repetitions(self):
        tasks = WorkStealingScheduler(
            granularity=8, min_chunk_repetitions=4
        ).schedule(entries_from_costs([4.0]), repetitions=8, num_workers=2)
        assert all(t.num_chunks == 2 for t in tasks)  # 8 reps // 4 min
        assert all(t.repetitions >= 4 for t in tasks)

    def test_too_few_repetitions_stay_whole(self):
        tasks = WorkStealingScheduler(
            granularity=4, min_chunk_repetitions=4
        ).schedule(entries_from_costs([4.0, 4.0]), repetitions=4, num_workers=2)
        assert all(t.num_chunks == 1 for t in tasks)

    def test_single_worker_never_splits(self):
        tasks = WorkStealingScheduler(granularity=4).schedule(
            entries_from_costs([4.0] * 3), repetitions=32, num_workers=1
        )
        assert all(t.num_chunks == 1 for t in tasks)

    def test_oversized_point_still_splits_at_least_adaptively(self):
        """The adaptive fair-share rule is a floor, not replaced."""
        adaptive = AdaptiveScheduler(oversubscribe=4).schedule(
            entries_from_costs([100.0, 1.0, 1.0]),
            repetitions=128,
            num_workers=2,
        )
        adaptive_chunks = max(t.num_chunks for t in adaptive)
        stealing = WorkStealingScheduler(oversubscribe=4, granularity=2).schedule(
            entries_from_costs([100.0, 1.0, 1.0]),
            repetitions=128,
            num_workers=2,
        )
        big = [t for t in stealing if t.point_index == 0]
        assert big[0].num_chunks >= adaptive_chunks


class TestWorkStealingParity:
    """Stealing == serial / replay / adaptive, bit for bit, 5 backends."""

    @pytest.mark.parametrize("make_state, prob_fn", BACKENDS)
    def test_unsplit_stealing_equals_serial_batch(
        self, manager, make_state, prob_fn
    ):
        """granularity=1 on an equal-cost batch: no splits, so stealing
        must reproduce the plain serial run_batch exactly — placement
        changed, geometry did not."""
        circuits = [clifford_circuit(2) for _ in range(4)]
        serial = make_sim(make_state, prob_fn, seed=13).run_batch(
            circuits, repetitions=12
        )
        stealing = make_sim(
            make_state,
            prob_fn,
            seed=13,
            executor=stealing_executor(
                manager, WorkStealingScheduler(granularity=1)
            ),
        ).run_batch(circuits, repetitions=12)
        assert_results_equal(serial, stealing)

    @pytest.mark.parametrize("make_state, prob_fn", BACKENDS)
    def test_split_schedule_matches_in_process_replay(
        self, manager, make_state, prob_fn
    ):
        """Default granularity pre-splits every point; the pooled stolen
        run must equal the identical schedule replayed in-process."""
        scheduler = WorkStealingScheduler(
            oversubscribe=2, min_chunk_repetitions=4, granularity=4
        )
        circuits = [clifford_circuit(d) for d in (1, 1, 12, 1)]
        pooled = make_sim(
            make_state,
            prob_fn,
            seed=17,
            executor=stealing_executor(manager, scheduler),
        ).run_batch(circuits, repetitions=24)
        assert scheduler.last_schedule["split_points"] == len(circuits)

        replay_sim = make_sim(make_state, prob_fn, seed=17)
        table = [replay_sim.compile(circuit) for circuit in circuits]
        entries = [
            BatchEntry(i, i, None, estimate_cost(table[i], 24))
            for i in range(len(table))
        ]
        replay_sched = WorkStealingScheduler(
            oversubscribe=2, min_chunk_repetitions=4, granularity=4
        )
        tasks = replay_sched.schedule(entries, 24, num_workers=2)
        base = _base_seed(17)
        parts = [
            _run_task_in_process(
                replay_sim,
                table,
                (
                    t.program_index,
                    t.point_index,
                    t.resolver,
                    t.repetitions,
                    t.num_chunks,
                    t.chunk_index,
                    base,
                ),
            )
            for t in tasks
        ]
        replayed = replay_sched.merge(tasks, parts, len(circuits))
        for (records, _), result in zip(replayed, pooled):
            assert set(records) == set(result.measurements)
            for key in records:
                np.testing.assert_array_equal(
                    records[key], result.measurements[key]
                )

    @pytest.mark.parametrize("make_state, prob_fn", BACKENDS)
    def test_stealing_equals_adaptive_dispatch(
        self, manager, make_state, prob_fn
    ):
        """Same geometry knobs, different dispatch (shared queue vs one
        future per task): output must be identical — dispatch is pure
        placement."""
        circuits = [clifford_circuit(d) for d in (1, 1, 12, 1)]

        def run(scheduler, mgr):
            return make_sim(
                make_state,
                prob_fn,
                seed=29,
                executor=stealing_executor(mgr, scheduler),
            ).run_batch(circuits, repetitions=24)

        adaptive = run(
            AdaptiveScheduler(oversubscribe=2, min_chunk_repetitions=4),
            manager,
        )
        with PoolManager() as other:
            stealing = run(
                WorkStealingScheduler(
                    oversubscribe=2, min_chunk_repetitions=4, granularity=1
                ),
                other,
            )
        assert_results_equal(adaptive, stealing)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_parity_per_start_method(self, manager, start_method):
        """The queue plumbing (initargs inheritance) works under every
        configured start method with identical output.  Equal costs keep
        the schedule unsplit so serial is the exact reference."""
        circuits = [clifford_circuit(2) for _ in range(3)]
        serial = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=31,
        ).run_batch(circuits, repetitions=16)
        stealing = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=31,
            executor=stealing_executor(
                manager,
                WorkStealingScheduler(granularity=1, oversubscribe=1),
                start_method=start_method,
            ),
        ).run_batch(circuits, repetitions=16)
        assert_results_equal(serial, stealing)

    @pytest.mark.parametrize("scope", ["auto", "points"])
    def test_sweep_scope_matches_serial_sweep(self, manager, scope):
        """Stealing through run_sweep's point scope: a parameterized
        sweep equals the serial sweep bit for bit."""
        theta = cirq.Symbol("theta")
        circuit = cirq.Circuit(
            cirq.H(QUBITS[0]),
            cirq.Rz(theta).on(QUBITS[0]),
            cirq.CNOT(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="m"),
        )
        params = [{"theta": 0.1 * k} for k in range(4)]
        serial = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=37,
        ).run_sweep(circuit, params, repetitions=12, scope=scope)
        stealing = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=37,
            executor=stealing_executor(
                manager, WorkStealingScheduler(granularity=1)
            ),
        ).run_sweep(circuit, params, repetitions=12, scope=scope)
        assert_results_equal(serial, stealing)

    def test_transports_are_identical(self, manager):
        """Split schedule, both transports: the payload channel (shared
        memory planes vs pickled dicts) must not affect the samples."""
        circuits = [clifford_circuit(d) for d in (1, 8, 1)]

        def run(transport, mgr):
            return make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=41,
                executor=stealing_executor(
                    mgr,
                    WorkStealingScheduler(granularity=2),
                    result_transport=transport,
                ),
            ).run_batch(circuits, repetitions=16)

        pickled = run("pickle", manager)
        with PoolManager() as other:
            shm = run("shm", other)
        assert_results_equal(pickled, shm)

    def test_cold_pool_stealing_matches_warm(self, manager):
        circuits = [clifford_circuit(d) for d in (1, 6, 1)]
        warm = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=43,
            executor=stealing_executor(manager),
        ).run_batch(circuits, repetitions=16)
        cold = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=43,
            executor=stealing_executor(manager, reuse_pool=False),
        ).run_batch(circuits, repetitions=16)
        assert_results_equal(warm, cold)

    def test_single_worker_falls_back_in_process(self):
        circuits = [clifford_circuit(d) for d in (1, 6, 1)]
        serial = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=47,
        ).run_batch(circuits, repetitions=16)
        inproc = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=47,
            executor=ProcessPoolExecutor(
                num_workers=1,
                scheduler=WorkStealingScheduler(granularity=1),
            ),
        ).run_batch(circuits, repetitions=16)
        assert_results_equal(serial, inproc)

    def test_streaming_early_close_cleans_up(self, manager):
        """Abandoning a stealing iterator mid-drain retires the pool
        (stale queue items must not leak into the next run) and unlinks
        every result plane — then the next run rebuilds and matches."""
        circuits = [clifford_circuit(2) for _ in range(4)]
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=53,
            executor=stealing_executor(
                manager, WorkStealingScheduler(granularity=1)
            ),
        )
        stream = sim.run_batch_iter(circuits, repetitions=12)
        next(stream)
        stream.close()
        assert live_segment_names() == []
        serial = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=53,
        ).run_batch(circuits, repetitions=12)
        again = sim.run_batch(circuits, repetitions=12)
        assert_results_equal(serial, again)

    def test_warm_reuse_single_init(self, manager):
        """Two stealing batches on one unchanged key: one worker init —
        and the shared queues are clean enough to reuse."""
        circuits = [clifford_circuit(2) for _ in range(4)]
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=59,
            executor=stealing_executor(manager),
        )
        first = sim.run_batch(circuits, repetitions=12)
        second = sim.run_batch(circuits, repetitions=12)
        assert_results_equal(first, second)
        assert manager.stats["inits"] == 1
        assert manager.stats["reuses"] >= 1


class TestWorkStealingCalibration:
    def test_every_task_calibrates_and_persists(self, manager, tmp_path):
        path = str(tmp_path / "calibration.json")
        table = CalibrationTable(path=path)
        scheduler = WorkStealingScheduler(granularity=2, calibration=table)
        circuits = [clifford_circuit(2) for _ in range(3)]
        make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=61,
            executor=stealing_executor(manager, scheduler),
        ).run_batch(circuits, repetitions=16)
        assert scheduler.seconds_per_cost is not None
        assert scheduler.seconds_per_cost > 0
        assert table.sample_count("StateVectorSimulationState", N) >= 1
        # The executor flushed the table after the successful drain.
        reloaded = CalibrationTable(path=path)
        assert reloaded.sample_count("StateVectorSimulationState", N) >= 1

    def test_next_schedule_starts_calibrated(self, manager, tmp_path):
        """The persisted loop closed: a later scheduler built over the
        same table file reports seconds estimates before any probe."""
        path = str(tmp_path / "calibration.json")
        circuits = [clifford_circuit(2) for _ in range(3)]
        make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=67,
            executor=stealing_executor(
                manager,
                WorkStealingScheduler(
                    granularity=2, calibration=CalibrationTable(path=path)
                ),
            ),
        ).run_batch(circuits, repetitions=16)

        fresh = WorkStealingScheduler(
            granularity=2, calibration=CalibrationTable(path=path)
        )
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=67,
        )
        programs = [sim.compile(c) for c in circuits]
        entries = [
            BatchEntry(
                i,
                i,
                None,
                estimate_cost(programs[i], 16),
                backend="StateVectorSimulationState",
                num_qubits=N,
            )
            for i in range(len(programs))
        ]
        fresh.schedule(entries, 16, num_workers=2)
        assert fresh.last_schedule["calibrated"] is True
        estimates = fresh.last_schedule["estimated_seconds"]
        assert estimates is not None and all(v > 0 for v in estimates)

    def test_calibration_does_not_change_output(self, manager):
        """A uniform same-backend rate scales all weights equally, so a
        calibrated stealing run equals an uncalibrated one bit for bit."""
        table = CalibrationTable(persist=False)
        table.record("StateVectorSimulationState", N, 5e-6)
        circuits = [clifford_circuit(d) for d in (1, 6, 1)]

        def run(scheduler, mgr):
            return make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=71,
                executor=stealing_executor(mgr, scheduler),
            ).run_batch(circuits, repetitions=16)

        plain = run(WorkStealingScheduler(granularity=2), manager)
        with PoolManager() as other:
            calibrated = run(
                WorkStealingScheduler(granularity=2, calibration=table), other
            )
        assert_results_equal(plain, calibrated)


class TestWorkStealingFailures:
    def test_task_error_propagates_and_pool_resets(self, manager):
        """A task failure inside a stolen chunk surfaces in the parent,
        retires the (queue-polluted) pool, releases every plane, and
        leaves the manager reusable."""
        circuits = [clifford_circuit(2) for _ in range(3)]
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            _raising_probability,
            seed=73,
            # fork: the injected module-level function must resolve in
            # the worker without re-importing the test module.
            executor=stealing_executor(manager, start_method="fork"),
        )
        with pytest.raises(ValueError, match="injected worker failure"):
            sim.run_batch(circuits, repetitions=16)
        assert live_segment_names() == []
        # Manager reusable: a healthy run rebuilds a fresh pool.
        inits_after_failure = manager.stats["inits"]
        good = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=73,
            executor=stealing_executor(
                manager,
                WorkStealingScheduler(granularity=1),
                start_method="fork",
            ),
        ).run_batch(circuits, repetitions=16)
        serial = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=73,
        ).run_batch(circuits, repetitions=16)
        assert_results_equal(serial, good)
        assert manager.stats["inits"] == inits_after_failure + 1
