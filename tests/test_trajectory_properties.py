"""Property tests pinning the batched trajectory engine's kernels.

Three kernels carry the batched engine's correctness and get adversarial
randomized coverage here:

* :func:`~repro.sampler.trajectory_batch.categorical_rows` — the
  vectorized resampler — against the scalar ``searchsorted(cumsum)``
  reference, including unnormalized rows and float-dust negatives;
* :meth:`~repro.sampler.trajectory_batch.BatchedStateVector.apply_kraus`
  — two-pass masked branching — against a per-trajectory scalar replay
  of the identical weight/choice/collapse recipe;
* the stacked GF(2) word helpers in :mod:`repro.states.bitpack` at
  widths 63/64/65, the word-boundary cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampler.trajectory_batch import (
    BatchedStateVector,
    categorical_rows,
)
from repro.states import bitpack as bp


# ----------------------------------------------------------------------
# categorical_rows vs the scalar searchsorted reference
# ----------------------------------------------------------------------

@st.composite
def prob_matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    probs = rng.random((rows, cols)) ** 3  # skewed, occasionally tiny
    # Random rows get float dust below zero (clipped by the kernel) and
    # random unnormalized scales.
    probs[rng.random((rows, cols)) < 0.1] = -1e-18
    probs *= rng.uniform(0.1, 10.0, size=(rows, 1))
    # Guarantee every row keeps some mass.
    probs[:, 0] += 0.01
    u = rng.random(rows)
    return probs, u


@given(prob_matrices())
@settings(max_examples=200, deadline=None)
def test_categorical_rows_matches_scalar_searchsorted(case):
    probs, u = case
    choice = categorical_rows(probs, u)
    clipped = np.clip(probs, 0.0, None)
    for b in range(probs.shape[0]):
        cum = np.cumsum(clipped[b])
        cum /= cum[-1]
        expected = min(
            int(np.searchsorted(cum, u[b], side="left")), probs.shape[1] - 1
        )
        assert choice[b] == expected


def test_categorical_rows_raises_on_vanished_row():
    probs = np.array([[0.5, 0.5], [0.0, 0.0]])
    try:
        categorical_rows(probs, np.array([0.3, 0.7]))
    except ValueError as exc:
        assert "vanished" in str(exc)
    else:  # pragma: no cover - the assert above must fire
        raise AssertionError("vanished row did not raise")


# ----------------------------------------------------------------------
# masked batched Kraus vs a scalar per-trajectory replay
# ----------------------------------------------------------------------

def _random_state_stack(rng, batch, n):
    vec = rng.normal(size=(batch, 2**n)) + 1j * rng.normal(size=(batch, 2**n))
    vec /= np.linalg.norm(vec, axis=1, keepdims=True)
    return vec.reshape((batch,) + (2,) * n)


def _random_kraus(rng, nk, k):
    dim = 2**k
    ops = rng.normal(size=(nk, dim, dim)) + 1j * rng.normal(
        size=(nk, dim, dim)
    )
    # Normalize so the channel is roughly trace-preserving in scale;
    # exact completeness is not required by the branching math.
    total = sum(op.conj().T @ op for op in ops)
    scale = np.sqrt(np.trace(total).real / dim)
    return [op / scale for op in ops]


@st.composite
def kraus_cases(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=min(2, n)))
    nk = draw(st.integers(min_value=1, max_value=4))
    batch = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, k, nk, batch, seed


@given(kraus_cases())
@settings(max_examples=100, deadline=None)
def test_masked_batched_kraus_matches_scalar_replay(case):
    n, k, nk, batch, seed = case
    rng = np.random.default_rng(seed)
    support = tuple(sorted(rng.choice(n, size=k, replace=False)))
    kraus = _random_kraus(rng, nk, k)
    tensor = _random_state_stack(rng, batch, n)
    bits = rng.integers(0, 2, size=(batch, n)).astype(np.int8)
    u_branch = rng.random(batch)

    adapter = BatchedStateVector(tensor.copy(), n)
    probs = adapter.apply_kraus(kraus, support, bits, u_branch)

    from repro.states.base import candidate_index_matrix

    idx = candidate_index_matrix(bits, support, n)
    for b in range(batch):
        psi = tensor[b].reshape(-1)
        # Pass 1: per-branch candidate masses.
        branch_probs = []
        for op in kraus:
            scalar = BatchedStateVector(tensor[b : b + 1].copy(), n)
            scalar.tensor = scalar._applied(scalar.tensor, op, support)
            flat = scalar.tensor.reshape(-1)
            branch_probs.append(np.abs(flat[idx[b]]) ** 2)
        weights = np.array([p.sum() for p in branch_probs])
        cum = np.cumsum(np.clip(weights, 0, None))
        cum /= cum[-1]
        choice = min(
            int(np.searchsorted(cum, u_branch[b], side="left")), nk - 1
        )
        # Pass 2: the chosen branch, renormalized.
        scalar = BatchedStateVector(tensor[b : b + 1].copy(), n)
        scalar.tensor = scalar._applied(
            scalar.tensor, kraus[choice], support
        )
        flat = scalar.tensor.reshape(-1)
        flat = flat / np.linalg.norm(flat)
        np.testing.assert_allclose(
            adapter.tensor[b].reshape(-1), flat, atol=1e-12
        )
        np.testing.assert_allclose(probs[b], branch_probs[choice], atol=1e-12)


# ----------------------------------------------------------------------
# stacked bitpack helpers at word-boundary widths
# ----------------------------------------------------------------------

@st.composite
def stacked_bit_cases(draw):
    width = draw(st.sampled_from([63, 64, 65]))
    batch = draw(st.integers(min_value=1, max_value=5))
    rows = draw(st.integers(min_value=1, max_value=7))
    col = draw(st.integers(min_value=0, max_value=width - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return width, batch, rows, col, seed


@given(stacked_bit_cases())
@settings(max_examples=200, deadline=None)
def test_stacked_column_helpers_match_unpacked(case):
    width, batch, rows, col, seed = case
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(batch, rows, width)).astype(np.uint8)
    packed = bp.pack_rows(bits, width)

    np.testing.assert_array_equal(
        bp.get_col_stacked(packed, col), bits[:, :, col]
    )

    flips = rng.integers(0, 2, size=(batch, rows)).astype(np.uint64)
    expected = bits.copy()
    expected[:, :, col] ^= flips.astype(np.uint8)
    xored = packed.copy()
    bp.xor_col_stacked(xored, col, flips)
    np.testing.assert_array_equal(bp.unpack_rows(xored, width), expected)

    values = rng.integers(0, 2, size=(batch, rows)).astype(np.uint64)
    expected = bits.copy()
    expected[:, :, col] = values.astype(np.uint8)
    written = packed.copy()
    bp.set_col_stacked(written, col, values)
    np.testing.assert_array_equal(bp.unpack_rows(written, width), expected)


@given(stacked_bit_cases())
@settings(max_examples=100, deadline=None)
def test_stacked_helpers_agree_with_scalar_siblings(case):
    width, batch, rows, col, seed = case
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(batch, rows, width)).astype(np.uint8)
    packed = bp.pack_rows(bits, width)
    for b in range(batch):
        np.testing.assert_array_equal(
            bp.get_col_stacked(packed, col)[b], bp.get_col(packed[b], col)
        )
