"""Property-based tests (hypothesis) for the Aaronson-Gottesman tableau.

Central invariants: for ANY Clifford gate sequence the tableau's bitstring
probabilities match the dense simulator exactly, probabilities form a valid
distribution supported on an affine subspace (size a power of two), and
forced projection is consistent with the probability chain rule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.protocols import act_on
from repro.states import (
    CliffordTableauSimulationState,
    StateVectorSimulationState,
)

_ONE_QUBIT = [cirq.H, cirq.S, cirq.S_DAG, cirq.X, cirq.Y, cirq.Z]
_TWO_QUBIT = [cirq.CNOT, cirq.CZ, cirq.SWAP]


@st.composite
def clifford_programs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    length = draw(st.integers(min_value=0, max_value=25))
    ops = []
    for _ in range(length):
        if n >= 2 and draw(st.booleans()):
            gate = draw(st.sampled_from(_TWO_QUBIT))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append((gate, (a, b)))
        else:
            gate = draw(st.sampled_from(_ONE_QUBIT))
            ops.append((gate, (draw(st.integers(0, n - 1)),)))
    return n, ops


def _evolve_both(n, ops):
    qs = cirq.LineQubit.range(n)
    sv = StateVectorSimulationState(qs)
    tb = CliffordTableauSimulationState(qs)
    for gate, axes in ops:
        op = gate.on(*(qs[a] for a in axes))
        act_on(op, sv)
        act_on(op, tb)
    return sv, tb


def _bits(i, n):
    return [(i >> (n - 1 - j)) & 1 for j in range(n)]


@given(clifford_programs())
@settings(max_examples=100, deadline=None)
def test_tableau_probabilities_match_dense(program):
    n, ops = program
    sv, tb = _evolve_both(n, ops)
    for i in range(2**n):
        b = _bits(i, n)
        assert abs(tb.probability_of(b) - sv.probability_of(b)) < 1e-9


@given(clifford_programs())
@settings(max_examples=100, deadline=None)
def test_tableau_support_is_power_of_two(program):
    n, ops = program
    _, tb = _evolve_both(n, ops)
    probs = [tb.probability_of(_bits(i, n)) for i in range(2**n)]
    nonzero = [p for p in probs if p > 0]
    assert abs(sum(probs) - 1.0) < 1e-9
    # Stabilizer states are uniform over an affine subspace.
    size = len(nonzero)
    assert size & (size - 1) == 0
    for p in nonzero:
        assert abs(p - 1.0 / size) < 1e-9


@given(clifford_programs(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_forced_projection_chain_rule(program, seed):
    """Projecting qubit 0 onto b0 then asking P(b | b0) reproduces P."""
    n, ops = program
    _, tb = _evolve_both(n, ops)
    rng = np.random.default_rng(seed)
    target = [int(rng.integers(2)) for _ in range(n)]
    p_full = tb.probability_of(target)
    scratch = tb.tableau.copy()
    chained = 1.0
    for axis, bit in enumerate(target):
        chained *= scratch.project_measurement(axis, bit)
        if chained == 0.0:
            break
    assert abs(chained - p_full) < 1e-9


@given(clifford_programs(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_measurement_collapse_consistency(program, seed):
    """A sampled measurement outcome always has nonzero pre-measurement
    probability, and afterwards the qubit is pinned to it."""
    n, ops = program
    _, tb = _evolve_both(n, ops)
    rng = np.random.default_rng(seed)
    pre = tb.copy(seed=0)
    bit = tb.tableau.measure(0, rng)
    # Marginal of qubit 0 = sum over all bitstrings with that bit.
    marginal = sum(
        pre.probability_of(_bits(i, n))
        for i in range(2**n)
        if _bits(i, n)[0] == bit
    )
    assert marginal > 1e-12
    assert tb.tableau.deterministic_outcome(0) == bit
