"""Tests for the Result container and histogram utilities."""

import numpy as np
import pytest

from repro.sampler import Result, plot_state_histogram


@pytest.fixture
def result():
    return Result(
        {
            "z": np.array([[0, 0], [1, 1], [1, 1], [0, 1]]),
            "single": np.array([[0], [1], [0], [1]]),
        }
    )


class TestResult:
    def test_repetitions(self, result):
        assert result.repetitions == 4

    def test_empty_result(self):
        assert Result({}).repetitions == 0

    def test_histogram_big_endian(self, result):
        hist = result.histogram("z")
        assert hist == {0: 1, 3: 2, 1: 1}

    def test_histogram_single_qubit(self, result):
        assert result.histogram("single") == {0: 2, 1: 2}

    def test_probabilities(self, result):
        probs = result.probabilities("z")
        assert probs[3] == pytest.approx(0.5)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_missing_key_raises(self, result):
        with pytest.raises(KeyError):
            result.histogram("nope")

    def test_dtype_coercion(self):
        r = Result({"m": [[0, 1], [1, 0]]})
        assert r.measurements["m"].dtype == np.int8

    def test_equality(self):
        a = Result({"m": np.array([[0], [1]])})
        b = Result({"m": np.array([[0], [1]])})
        c = Result({"m": np.array([[1], [1]])})
        assert a == b
        assert a != c
        assert a != Result({"other": np.array([[0], [1]])})


class TestPlotStateHistogram:
    def test_renders_bars(self, result, capsys):
        text = plot_state_histogram(result, key="z")
        assert "00 |" in text
        assert "11 |" in text
        assert "#" in text
        assert capsys.readouterr().out  # also printed

    def test_single_key_inferred(self):
        r = Result({"z": np.array([[0], [1]])})
        text = plot_state_histogram(r)
        assert "0 |" in text

    def test_ambiguous_key_raises(self, result):
        with pytest.raises(ValueError, match="Multiple keys"):
            plot_state_histogram(result)
