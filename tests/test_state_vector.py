"""Tests for the dense state-vector simulation state."""

import itertools

import numpy as np
import pytest

from repro import circuits as cirq
from repro.protocols import act_on, unitary
from repro.states import StateVectorSimulationState


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


class TestInitialization:
    def test_default_zero_state(self, qubits):
        s = StateVectorSimulationState(qubits)
        vec = s.state_vector()
        assert vec[0] == 1.0
        assert np.count_nonzero(vec) == 1

    def test_integer_initial_state_big_endian(self, qubits):
        s = StateVectorSimulationState(qubits, initial_state=0b110)
        assert s.state_vector()[6] == 1.0

    def test_vector_initial_state(self, qubits):
        vec = np.zeros(8, dtype=complex)
        vec[3] = 1.0
        s = StateVectorSimulationState(qubits, initial_state=vec)
        assert s.state_vector()[3] == 1.0

    def test_unnormalized_vector_rejected(self, qubits):
        with pytest.raises(ValueError, match="normalized"):
            StateVectorSimulationState(qubits, initial_state=np.ones(8))

    def test_wrong_length_rejected(self, qubits):
        with pytest.raises(ValueError):
            StateVectorSimulationState(qubits, initial_state=np.ones(4))

    def test_duplicate_qubits_rejected(self):
        q = cirq.LineQubit(0)
        with pytest.raises(ValueError):
            StateVectorSimulationState([q, q])


class TestGateApplication:
    def test_x_flips(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.apply_unitary(unitary(cirq.X), [1])
        assert s.probability_of([0, 1, 0]) == pytest.approx(1.0)

    def test_h_superposes(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.apply_unitary(unitary(cirq.H), [0])
        assert s.probability_of([0, 0, 0]) == pytest.approx(0.5)
        assert s.probability_of([1, 0, 0]) == pytest.approx(0.5)

    def test_cnot_on_nonadjacent_axes(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.apply_unitary(unitary(cirq.X), [0])
        s.apply_unitary(unitary(cirq.CNOT), [0, 2])
        assert s.probability_of([1, 0, 1]) == pytest.approx(1.0)

    def test_cnot_reversed_axes(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.apply_unitary(unitary(cirq.X), [2])
        s.apply_unitary(unitary(cirq.CNOT), [2, 0])
        assert s.probability_of([1, 0, 1]) == pytest.approx(1.0)

    def test_matches_circuit_final_state(self):
        qs = cirq.LineQubit.range(4)
        circ = cirq.generate_random_circuit(qs, 15, random_state=8)
        s = StateVectorSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, s)
        np.testing.assert_allclose(
            s.state_vector(), circ.final_state_vector(qubit_order=qs), atol=1e-9
        )

    def test_act_on_dispatch_unitary(self, qubits):
        s = StateVectorSimulationState(qubits)
        act_on(cirq.X(qubits[2]), s)
        assert s.probability_of([0, 0, 1]) == pytest.approx(1.0)


class TestCandidateProbabilities:
    def _random_state(self, n, seed):
        qs = cirq.LineQubit.range(n)
        circ = cirq.generate_random_circuit(qs, 10, random_state=seed)
        s = StateVectorSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, s)
        return s

    @pytest.mark.parametrize("support", [[0], [2], [0, 1], [1, 3], [3, 0]])
    def test_matches_per_candidate_loop(self, support):
        s = self._random_state(4, seed=2)
        bits = [1, 0, 1, 1]
        fast = s.candidate_probabilities(bits, support)
        for idx, cand_bits in enumerate(
            itertools.product([0, 1], repeat=len(support))
        ):
            full = list(bits)
            for axis, b in zip(support, cand_bits):
                full[axis] = b
            assert fast[idx] == pytest.approx(s.probability_of(full), abs=1e-12)

    def test_candidate_order_is_big_endian_in_support_order(self):
        qs = cirq.LineQubit.range(2)
        s = StateVectorSimulationState(qs, initial_state=0b01)
        # support (1, 0): candidate index 0b10 means qubit1=1, qubit0=0.
        probs = s.candidate_probabilities([0, 0], [1, 0])
        assert probs[0b10] == pytest.approx(1.0)

    def test_sums_to_marginal(self):
        s = self._random_state(4, seed=3)
        bits = [0, 1, 0, 0]
        probs = s.candidate_probabilities(bits, [1, 2])
        # Marginal of the fixed complement bits:
        full = np.abs(s.state_vector()) ** 2
        total = sum(
            full[int(f"{b0}{b1}{b2}{b3}", 2)]
            for b0 in (0,)
            for b1 in (0, 1)
            for b2 in (0, 1)
            for b3 in (0,)
        )
        assert probs.sum() == pytest.approx(total, abs=1e-12)


class TestMeasurementAndProjection:
    def test_deterministic_measure(self, qubits):
        s = StateVectorSimulationState(qubits, initial_state=0b101, seed=0)
        assert s.measure([0, 1, 2]) == [1, 0, 1]

    def test_collapse_after_measure(self, qubits):
        s = StateVectorSimulationState(qubits, seed=1)
        s.apply_unitary(unitary(cirq.H), [0])
        s.apply_unitary(unitary(cirq.CNOT), [0, 1])
        (bit,) = s.measure([0])
        # Entangled partner must have collapsed identically.
        assert s.measure([1]) == [bit]

    def test_measure_statistics(self, qubits):
        counts = [0, 0]
        for seed in range(300):
            s = StateVectorSimulationState(qubits, seed=seed)
            s.apply_unitary(unitary(cirq.H), [1])
            counts[s.measure([1])[0]] += 1
        assert 100 < counts[0] < 200

    def test_project(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.apply_unitary(unitary(cirq.H), [0])
        s.project([0], [1])
        assert s.probability_of([1, 0, 0]) == pytest.approx(1.0)

    def test_project_zero_probability_raises(self, qubits):
        s = StateVectorSimulationState(qubits)
        with pytest.raises(ValueError, match="zero-probability"):
            s.project([0], [1])

    def test_renormalize(self, qubits):
        s = StateVectorSimulationState(qubits)
        s.tensor = s.tensor * 0.5
        s.renormalize()
        assert np.linalg.norm(s.state_vector()) == pytest.approx(1.0)


class TestChannels:
    def test_bit_flip_trajectory_statistics(self):
        qs = cirq.LineQubit.range(1)
        flips = 0
        for seed in range(400):
            s = StateVectorSimulationState(qs, seed=seed)
            act_on(cirq.bit_flip(0.25)(qs[0]), s)
            flips += int(s.probability_of([1]) > 0.5)
        assert 0.15 < flips / 400 < 0.35

    def test_amplitude_damp_from_one(self):
        qs = cirq.LineQubit.range(1)
        decays = 0
        for seed in range(400):
            s = StateVectorSimulationState(qs, initial_state=1, seed=seed)
            act_on(cirq.amplitude_damp(0.4)(qs[0]), s)
            decays += int(s.probability_of([0]) > 0.5)
        assert 0.3 < decays / 400 < 0.5


class TestCopy:
    def test_copy_independent(self, qubits):
        s = StateVectorSimulationState(qubits)
        c = s.copy()
        c.apply_unitary(unitary(cirq.X), [0])
        assert s.probability_of([0, 0, 0]) == pytest.approx(1.0)
        assert c.probability_of([1, 0, 0]) == pytest.approx(1.0)

    def test_copy_preserves_register(self, qubits):
        s = StateVectorSimulationState(qubits)
        assert s.copy().qubits == s.qubits
