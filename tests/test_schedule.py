"""Adaptive scheduling: cost model, task geometry, and parity contracts.

The scheduler's determinism contract is the load-bearing property: the
task set (point, chunk, size, seed recipe) must be a function of the
batch's static costs and the scheduler configuration alone — never of
worker count at equal configuration, submission order, or timing.  The
parity classes pin the two bit-for-bit guarantees:

* a batch with **no oversized point** schedules exactly like FIFO, so
  adaptive output equals the plain serial ``run_batch`` on all five
  backends;
* a batch **with** split points is bit-for-bit identical to the same
  schedule replayed in-process (the "serial path" of the scheduler),
  again on all five backends.
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.sampler import (
    AdaptiveScheduler,
    FifoScheduler,
    PoolManager,
    ProcessPoolExecutor,
    estimate_cost,
)
from repro.sampler.executors import _run_task_in_process
from repro.sampler.schedule import BatchEntry, Scheduler
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def pool_start_methods():
    import multiprocessing
    import os

    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return methods or [available[0]]


START_METHODS = pool_start_methods()

N = 3
QUBITS = cirq.LineQubit.range(N)


def clifford_circuit(depth):
    circuit = cirq.Circuit(cirq.H(QUBITS[0]))
    for _ in range(depth):
        circuit.append(cirq.CNOT(QUBITS[0], QUBITS[1]))
        circuit.append(cirq.S(QUBITS[2]))
        circuit.append(cirq.CNOT(QUBITS[1], QUBITS[2]))
    circuit.append(cirq.measure(*QUBITS, key="m"))
    return circuit


BACKENDS = [
    pytest.param(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        id="state_vector",
    ),
    pytest.param(
        lambda: DensityMatrixSimulationState(QUBITS),
        born.compute_probability_density_matrix,
        id="density_matrix",
    ),
    pytest.param(
        lambda: StabilizerChFormSimulationState(QUBITS),
        born.compute_probability_stabilizer_state,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableauSimulationState(QUBITS),
        born.compute_probability_tableau,
        id="clifford_tableau",
    ),
    pytest.param(
        lambda: MPSState(QUBITS),
        born.compute_probability_mps,
        id="mps",
    ),
]


def make_sim(make_state, prob_fn, seed, executor=None):
    return bgls.Simulator(
        make_state(), bgls.act_on, prob_fn, seed=seed, executor=executor
    )


def assert_results_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert set(ra.measurements) == set(rb.measurements)
        for key in ra.measurements:
            np.testing.assert_array_equal(
                ra.measurements[key], rb.measurements[key]
            )


def entries_from_costs(costs):
    return [BatchEntry(i, i, None, cost) for i, cost in enumerate(costs)]


class TestCostModel:
    def test_cost_scales_with_depth_and_repetitions(self):
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            0,
        )
        shallow = sim.compile(clifford_circuit(1))
        deep = sim.compile(clifford_circuit(10))
        assert estimate_cost(deep, 10) > estimate_cost(shallow, 10)
        assert estimate_cost(shallow, 20) == 2 * estimate_cost(shallow, 10)

    def test_cost_is_positive_for_trivial_programs(self):
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            0,
        )
        program = sim.compile(
            cirq.Circuit(cirq.measure(*QUBITS, key="m"))
        )
        assert estimate_cost(program, 1) >= 1

    def test_trajectory_entries_cost_the_multiplier(self):
        """A noisy (trajectory-mode) circuit costs TRAJECTORY_COST_MULTIPLIER
        times its unitary twin of identical structure: every repetition
        replays the whole gate loop instead of resampling one evolved
        state, and the scheduler must see that asymmetry to balance
        batches mixing the two."""
        from repro.sampler.schedule import TRAJECTORY_COST_MULTIPLIER

        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            0,
        )
        unitary = sim.compile(clifford_circuit(4))
        noisy_circuit = clifford_circuit(4)
        noisy = sim.compile(
            cirq.Circuit(
                list(noisy_circuit.all_operations())[:-1]
                + [cirq.depolarize(0.01)(QUBITS[0])]
                + [cirq.measure(*QUBITS, key="m")]
            )
        )
        assert not unitary.needs_trajectories
        assert noisy.needs_trajectories
        # Same structural count: the noise op adds one record, so compare
        # per-op costs instead of totals.
        unit_ops = unitary.shared_record_count + unitary.param_slot_count
        noisy_ops = noisy.shared_record_count + noisy.param_slot_count
        per_op_unitary = estimate_cost(unitary, 10) / unit_ops
        per_op_noisy = estimate_cost(noisy, 10) / noisy_ops
        assert per_op_noisy == TRAJECTORY_COST_MULTIPLIER * per_op_unitary


class TestFifoScheduler:
    def test_one_task_per_point_in_order(self):
        tasks = FifoScheduler().schedule(
            entries_from_costs([5.0, 1.0, 3.0]), repetitions=10, num_workers=4
        )
        assert [(t.point_index, t.chunk_index, t.num_chunks) for t in tasks] == [
            (0, 0, 1),
            (1, 0, 1),
            (2, 0, 1),
        ]
        assert all(t.repetitions == 10 for t in tasks)


class TestAdaptiveScheduler:
    def test_equal_costs_schedule_like_fifo(self):
        """No oversized point: identical geometry and order to FIFO —
        the precondition for serial bit-for-bit parity."""
        scheduler = AdaptiveScheduler()
        tasks = scheduler.schedule(
            entries_from_costs([4.0] * 6), repetitions=20, num_workers=2
        )
        assert [(t.point_index, t.chunk_index) for t in tasks] == [
            (i, 0) for i in range(6)
        ]
        assert all(t.num_chunks == 1 for t in tasks)
        assert scheduler.last_schedule["split_points"] == 0

    def test_largest_first_ordering(self):
        tasks = AdaptiveScheduler().schedule(
            entries_from_costs([1.0, 8.0, 3.0]), repetitions=4, num_workers=2
        )
        assert [t.point_index for t in tasks] == [1, 2, 0]

    def test_oversized_point_splits_into_repetition_chunks(self):
        scheduler = AdaptiveScheduler(oversubscribe=2, min_chunk_repetitions=4)
        tasks = scheduler.schedule(
            entries_from_costs([100.0, 1.0, 1.0]), repetitions=32, num_workers=2
        )
        split = [t for t in tasks if t.point_index == 0]
        assert len(split) > 1
        assert all(t.num_chunks == len(split) for t in split)
        assert sorted(t.chunk_index for t in split) == list(range(len(split)))
        assert sum(t.repetitions for t in split) == 32
        assert all(t.repetitions >= 4 for t in split)
        # Small points stay whole with the serial seed recipe.
        assert all(
            t.num_chunks == 1 for t in tasks if t.point_index != 0
        )
        assert scheduler.last_schedule["split_points"] == 1

    def test_few_points_many_workers_splits_for_utilization(self):
        """A 2-point sweep on a 8-worker pool splits both points."""
        tasks = AdaptiveScheduler(min_chunk_repetitions=1).schedule(
            entries_from_costs([10.0, 10.0]), repetitions=64, num_workers=8
        )
        assert len(tasks) > 2
        assert all(t.num_chunks > 1 for t in tasks)

    def test_schedule_is_deterministic(self):
        costs = [7.0, 2.0, 9.0, 9.0, 1.0]
        a = AdaptiveScheduler().schedule(
            entries_from_costs(costs), repetitions=24, num_workers=3
        )
        b = AdaptiveScheduler().schedule(
            entries_from_costs(costs), repetitions=24, num_workers=3
        )
        assert [
            (t.point_index, t.chunk_index, t.num_chunks, t.repetitions)
            for t in a
        ] == [
            (t.point_index, t.chunk_index, t.num_chunks, t.repetitions)
            for t in b
        ]

    def test_single_worker_never_splits(self):
        tasks = AdaptiveScheduler().schedule(
            entries_from_costs([100.0, 1.0]), repetitions=64, num_workers=1
        )
        assert all(t.num_chunks == 1 for t in tasks)

    def test_merge_reassembles_chunks_in_chunk_order(self):
        """Out-of-order completion cannot change the merged output."""
        scheduler = AdaptiveScheduler(oversubscribe=2, min_chunk_repetitions=1)
        tasks = scheduler.schedule(
            entries_from_costs([50.0, 1.0]), repetitions=8, num_workers=2
        )

        def fake_part(task):
            rows = np.full(
                (task.repetitions, 1),
                task.point_index * 100 + task.chunk_index,
                dtype=np.int64,
            )
            return {"m": rows}, rows

        merged = Scheduler.merge(tasks, [fake_part(t) for t in tasks], 2)
        assert len(merged) == 2
        chunk_ids = merged[0][1][:, 0]
        # Chunk labels appear in nondecreasing chunk order.
        assert list(chunk_ids) == sorted(chunk_ids)

    def test_calibrate_reports_estimated_seconds(self):
        scheduler = AdaptiveScheduler()
        scheduler.schedule(
            entries_from_costs([4.0, 2.0]), repetitions=8, num_workers=1
        )
        assert scheduler.last_schedule["estimated_seconds"] is None
        scheduler.calibrate(cost=4.0, seconds=0.5)
        assert scheduler.seconds_per_cost == pytest.approx(0.125)
        estimates = scheduler.last_schedule["estimated_seconds"]
        assert estimates == pytest.approx([0.5, 0.25])

    def test_validation(self):
        with pytest.raises(ValueError, match="oversubscribe"):
            AdaptiveScheduler(oversubscribe=0)
        with pytest.raises(ValueError, match="min_chunk_repetitions"):
            AdaptiveScheduler(min_chunk_repetitions=0)


@pytest.fixture
def manager():
    mgr = PoolManager()
    yield mgr
    mgr.shutdown()


class TestAdaptiveParity:
    """The scheduler's bit-for-bit contracts on every backend."""

    @pytest.mark.parametrize("make_state, prob_fn", BACKENDS)
    def test_unsplit_adaptive_equals_serial_batch(
        self, manager, make_state, prob_fn
    ):
        """Equal-cost batches never split, so adaptive output == the
        plain serial run_batch, bit for bit."""
        circuits = [clifford_circuit(2) for _ in range(4)]
        serial = make_sim(make_state, prob_fn, seed=13).run_batch(
            circuits, repetitions=12
        )
        adaptive = make_sim(
            make_state,
            prob_fn,
            seed=13,
            executor=ProcessPoolExecutor(
                num_workers=2,
                start_method=START_METHODS[0],
                pool_manager=manager,
                scheduler=AdaptiveScheduler(),
            ),
        ).run_batch(circuits, repetitions=12)
        assert_results_equal(serial, adaptive)

    @pytest.mark.parametrize("make_state, prob_fn", BACKENDS)
    def test_split_schedule_matches_in_process_replay(
        self, manager, make_state, prob_fn
    ):
        """A mixed-depth batch with an oversized (split) point is
        bit-for-bit identical to the same schedule replayed in-process —
        the scheduler's serial path."""
        scheduler = AdaptiveScheduler(oversubscribe=2, min_chunk_repetitions=4)
        circuits = [clifford_circuit(d) for d in (1, 1, 12, 1)]
        sim = make_sim(
            make_state,
            prob_fn,
            seed=17,
            executor=ProcessPoolExecutor(
                num_workers=2,
                start_method=START_METHODS[0],
                pool_manager=manager,
                scheduler=scheduler,
            ),
        )
        pooled = sim.run_batch(circuits, repetitions=24)
        assert scheduler.last_schedule["split_points"] >= 1

        # Replay the identical schedule in the parent process.
        replay_sim = make_sim(make_state, prob_fn, seed=17)
        table = [replay_sim.compile(circuit) for circuit in circuits]
        from repro.sampler.schedule import BatchEntry as Entry
        from repro.sampler.service import _base_seed

        entries = [
            Entry(i, i, None, estimate_cost(table[i], 24))
            for i in range(len(table))
        ]
        replay_sched = AdaptiveScheduler(
            oversubscribe=2, min_chunk_repetitions=4
        )
        tasks = replay_sched.schedule(entries, 24, num_workers=2)
        base = _base_seed(17)
        parts = [
            _run_task_in_process(
                replay_sim,
                table,
                (
                    t.program_index,
                    t.point_index,
                    t.resolver,
                    t.repetitions,
                    t.num_chunks,
                    t.chunk_index,
                    base,
                ),
            )
            for t in tasks
        ]
        replayed = replay_sched.merge(tasks, parts, len(circuits))
        for (records, _), result in zip(replayed, pooled):
            assert set(records) == set(result.measurements)
            for key in records:
                np.testing.assert_array_equal(
                    records[key], result.measurements[key]
                )

    def test_probe_calibrates_without_changing_output(self, manager):
        circuits = [clifford_circuit(d) for d in (1, 8, 1, 1)]

        def run(scheduler, mgr):
            return make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=23,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method=START_METHODS[0],
                    pool_manager=mgr,
                    scheduler=scheduler,
                ),
            ).run_batch(circuits, repetitions=16)

        probing = AdaptiveScheduler(probe=True)
        with_probe = run(probing, manager)
        assert probing.seconds_per_cost is not None
        assert probing.last_schedule["estimated_seconds"] is not None
        with PoolManager() as other:
            without = run(AdaptiveScheduler(probe=False), other)
        assert_results_equal(with_probe, without)
