"""Warm-pool execution service: determinism + lifecycle test suite.

The contracts pinned here (the PR's acceptance criteria):

* **Point-scope parity** — pooled ``run_sweep(scope="points")`` output is
  bit-for-bit identical to a serial, executor-free ``run_sweep`` for the
  same seed, on all five shipped backends.
* **Warm reuse** — consecutive ``run_sweep`` calls over one compiled
  Program reuse the pool with **zero** worker re-initializations
  (``PoolManager.stats["inits"]`` stays 1), and re-initialize exactly
  when the execution key changes (new program, new initial-state
  payload, changed geometry).
* **Warm/cold equality** — ``reuse_pool=True`` and ``reuse_pool=False``
  produce identical samples; reuse changes only where startup is paid.
* **Clean shutdown** — context-manager and ``atexit`` paths join every
  worker; no leaked processes, and a failed task never leaves a
  poisoned pool behind.

The pooled start method comes from ``BGLS_POOL_START_METHODS``
(comma-separated; default ``fork``) so CI can run the whole suite under
``forkserver`` and ``spawn`` without duplicating tests.
"""

import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.sampler import PoolManager, ProcessPoolExecutor, SerialExecutor
from repro.sampler.service import execution_key
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def pool_start_methods():
    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return methods or [available[0]]


START_METHODS = pool_start_methods()

N = 3
QUBITS = cirq.LineQubit.range(N)
THETA = cirq.Symbol("theta")


def parameterized_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.Rx(THETA).on(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


def clifford_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.CNOT(QUBITS[1], QUBITS[2]),
        cirq.S(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


PARAM_POINTS = [{"theta": 0.3 * i} for i in range(5)]
CLIFFORD_POINTS = [None] * 5

# (state factory, probability fn, circuit factory, sweep resolvers): the
# stabilizer backends sweep seed streams over a Clifford circuit (no
# parameterized non-Clifford gates), the others a real parameter sweep.
BACKENDS = [
    pytest.param(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        parameterized_circuit,
        PARAM_POINTS,
        id="state_vector",
    ),
    pytest.param(
        lambda: DensityMatrixSimulationState(QUBITS),
        born.compute_probability_density_matrix,
        parameterized_circuit,
        PARAM_POINTS,
        id="density_matrix",
    ),
    pytest.param(
        lambda: StabilizerChFormSimulationState(QUBITS),
        born.compute_probability_stabilizer_state,
        clifford_circuit,
        CLIFFORD_POINTS,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableauSimulationState(QUBITS),
        born.compute_probability_tableau,
        clifford_circuit,
        CLIFFORD_POINTS,
        id="clifford_tableau",
    ),
    pytest.param(
        lambda: MPSState(QUBITS),
        born.compute_probability_mps,
        parameterized_circuit,
        PARAM_POINTS,
        id="mps",
    ),
]


def make_sim(make_state, prob_fn, seed, executor=None):
    return bgls.Simulator(
        make_state(), bgls.act_on, prob_fn, seed=seed, executor=executor
    )


def sv_sim(seed, executor=None):
    return make_sim(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        seed,
        executor,
    )


def assert_sweeps_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert set(ra.measurements) == set(rb.measurements)
        for key in ra.measurements:
            np.testing.assert_array_equal(
                ra.measurements[key], rb.measurements[key]
            )


@pytest.fixture
def manager():
    mgr = PoolManager()
    yield mgr
    mgr.shutdown()


class TestPointScopeParity:
    """Pooled point scope == serial run_sweep, bit for bit, all backends."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize(
        "make_state, prob_fn, make_circuit, points", BACKENDS
    )
    def test_pooled_points_match_serial(
        self, manager, make_state, prob_fn, make_circuit, points, start_method
    ):
        circuit = make_circuit()
        serial = make_sim(make_state, prob_fn, seed=42).run_sweep(
            circuit, points, repetitions=18
        )
        pooled_sim = make_sim(
            make_state,
            prob_fn,
            seed=42,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=start_method, pool_manager=manager
            ),
        )
        pooled = pooled_sim.run_sweep(
            circuit, points, repetitions=18, scope="points"
        )
        assert_sweeps_equal(serial, pooled)
        assert manager.stats["inits"] == 1

    def test_bitstring_sweep_matches_serial(self, manager):
        circuit = parameterized_circuit()
        serial = sv_sim(7).sample_bitstrings_sweep(
            circuit, PARAM_POINTS, repetitions=23
        )
        pooled = sv_sim(
            7,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).sample_bitstrings_sweep(
            circuit, PARAM_POINTS, repetitions=23, scope="points"
        )
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a, b)

    def test_trajectory_circuit_parity(self, manager):
        """Channel circuits (trajectory mode inside workers) also match."""
        from repro.circuits import channels

        circuit = cirq.Circuit(
            cirq.H(QUBITS[0]),
            channels.depolarize(0.1).on(QUBITS[0]),
            cirq.CNOT(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="m"),
        )
        points = [None] * 4
        serial = sv_sim(11).run_sweep(circuit, points, repetitions=12)
        pooled = sv_sim(
            11,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_sweep(circuit, points, repetitions=12, scope="points")
        assert_sweeps_equal(serial, pooled)

    def test_points_scope_without_executor_is_serial(self):
        """Explicit point scope with no executor degrades to the serial loop."""
        circuit = parameterized_circuit()
        a = sv_sim(5).run_sweep(circuit, PARAM_POINTS, repetitions=14)
        b = sv_sim(5).run_sweep(
            circuit, PARAM_POINTS, repetitions=14, scope="points"
        )
        assert_sweeps_equal(a, b)

    def test_auto_scope_equals_points_for_pooled_executor(self, manager):
        circuit = parameterized_circuit()
        executor = ProcessPoolExecutor(
            num_workers=2, start_method=START_METHODS[0], pool_manager=manager
        )
        sim = sv_sim(9, executor=executor)
        auto = sim.run_sweep(circuit, PARAM_POINTS, repetitions=10)
        explicit = sim.run_sweep(
            circuit, PARAM_POINTS, repetitions=10, scope="points"
        )
        assert_sweeps_equal(auto, explicit)

    def test_repetition_scope_keeps_chunk_geometry(self, manager):
        """scope="repetitions" chunks each point like SerialExecutor(chunks)."""
        circuit = parameterized_circuit()
        pooled = sv_sim(
            13,
            executor=ProcessPoolExecutor(
                num_workers=2,
                chunks_per_worker=2,
                start_method=START_METHODS[0],
                pool_manager=manager,
            ),
        ).run_sweep(
            circuit, PARAM_POINTS[:3], repetitions=16, scope="repetitions"
        )
        chunked = sv_sim(13, executor=SerialExecutor(chunks=4)).run_sweep(
            circuit, PARAM_POINTS[:3], repetitions=16, scope="repetitions"
        )
        assert_sweeps_equal(pooled, chunked)

    def test_single_worker_fallback_keeps_point_scope_streams(self):
        """Regression: point-scope output must not depend on worker count.

        The in-process fallback (num_workers=1) must use the same
        one-stream-per-point recipe as the pooled fan-out, not the
        chunked execute() geometry.
        """
        circuit = parameterized_circuit()
        serial = sv_sim(11).run_sweep(circuit, PARAM_POINTS, repetitions=15)
        one_worker = sv_sim(
            11, executor=ProcessPoolExecutor(num_workers=1)
        ).run_sweep(circuit, PARAM_POINTS, repetitions=15, scope="points")
        assert_sweeps_equal(serial, one_worker)

    def test_single_point_sweep_matches_serial(self, manager):
        """Regression: a 1-point sweep must not depend on sweep length."""
        circuit = parameterized_circuit()
        serial = sv_sim(11).run_sweep(circuit, PARAM_POINTS[:1], repetitions=15)
        pooled = sv_sim(
            11,
            executor=ProcessPoolExecutor(
                num_workers=4, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_sweep(circuit, PARAM_POINTS[:1], repetitions=15, scope="points")
        assert_sweeps_equal(serial, pooled)

    def test_invalid_scope_raises(self):
        with pytest.raises(ValueError, match="scope"):
            sv_sim(1).run_sweep(
                parameterized_circuit(), PARAM_POINTS, repetitions=2, scope="bogus"
            )


class TestWarmReuse:
    """The init counter: reuse on equal keys, re-init exactly on change."""

    def test_zero_reinitializations_across_consecutive_sweeps(self, manager):
        """Acceptance criterion: >= 2 run_sweep calls, one worker init."""
        circuit = parameterized_circuit()
        sim = sv_sim(
            21,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        first = sim.run_sweep(circuit, PARAM_POINTS, repetitions=10, scope="points")
        second = sim.run_sweep(circuit, PARAM_POINTS, repetitions=10, scope="points")
        third = sim.run_sweep(circuit, PARAM_POINTS, repetitions=10, scope="points")
        assert manager.stats["inits"] == 1
        assert manager.stats["reuses"] == 2
        assert manager.stats["key_changes"] == 0
        assert_sweeps_equal(first, second)
        assert_sweeps_equal(first, third)

    def test_program_change_reinitializes(self, manager):
        executor = ProcessPoolExecutor(
            num_workers=2, start_method=START_METHODS[0], pool_manager=manager
        )
        sim = sv_sim(3, executor=executor)
        sim.run_sweep(parameterized_circuit(), PARAM_POINTS, repetitions=8, scope="points")
        other = cirq.Circuit(
            cirq.X(QUBITS[0]),
            cirq.Rx(THETA).on(QUBITS[1]),
            cirq.measure(*QUBITS, key="m"),
        )
        sim.run_sweep(other, PARAM_POINTS, repetitions=8, scope="points")
        assert manager.stats["inits"] == 2
        assert manager.stats["key_changes"] == 1

    def test_initial_state_payload_change_reinitializes(self, manager):
        """Snapshot backends key on payload content: |0..0> vs |+0..0>."""
        circuit = clifford_circuit()

        def tableau_sim(pre_hadamard):
            state = CliffordTableauSimulationState(QUBITS)
            if pre_hadamard:
                bgls.act_on(cirq.H.on(QUBITS[0]), state)
            return bgls.Simulator(
                state,
                bgls.act_on,
                born.compute_probability_tableau,
                seed=5,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method=START_METHODS[0],
                    pool_manager=manager,
                ),
            )

        tableau_sim(False).run_sweep(circuit, CLIFFORD_POINTS, repetitions=6, scope="points")
        tableau_sim(True).run_sweep(circuit, CLIFFORD_POINTS, repetitions=6, scope="points")
        assert manager.stats["inits"] == 2
        assert manager.stats["key_changes"] == 1

    def test_equal_snapshot_payload_reuses_across_simulators(self, manager):
        """Two distinct-but-equal packed states share one warm pool."""
        circuit = clifford_circuit()
        for _ in range(2):
            sim = bgls.Simulator(
                CliffordTableauSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_tableau,
                seed=5,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method=START_METHODS[0],
                    pool_manager=manager,
                ),
            )
            sim.run_sweep(circuit, CLIFFORD_POINTS, repetitions=6, scope="points")
        assert manager.stats["inits"] == 1
        assert manager.stats["reuses"] == 1

    def test_execute_path_reuses_pool_via_memoized_plan(self, manager):
        """Repetition-scope run() calls share the pool too: the memoized
        specialize cache hands the manager the same plan object."""
        circuit = clifford_circuit()
        sim = bgls.Simulator(
            StabilizerChFormSimulationState(QUBITS),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=17,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        a = sim.sample_bitstrings(circuit, repetitions=24)
        b = sim.sample_bitstrings(circuit, repetitions=24)
        assert manager.stats["inits"] == 1
        assert manager.stats["reuses"] == 1
        np.testing.assert_array_equal(a, b)

    def test_key_includes_simulator_config(self, manager):
        """fuse_moments toggling re-initializes (different shipped config)."""
        circuit = parameterized_circuit()
        for fuse in (True, False):
            sim = bgls.Simulator(
                StateVectorSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_state_vector,
                seed=2,
                fuse_moments=fuse,
                executor=ProcessPoolExecutor(
                    num_workers=2,
                    start_method=START_METHODS[0],
                    pool_manager=manager,
                ),
            )
            sim.run_sweep(circuit, PARAM_POINTS, repetitions=6, scope="points")
        assert manager.stats["inits"] == 2

    def test_execution_key_requires_exactly_one_unit(self):
        sim = sv_sim(0)
        with pytest.raises(ValueError, match="exactly one"):
            execution_key(sim)
        with pytest.raises(ValueError, match="exactly one"):
            execution_key(sim, plan=object(), program=object())


def distinct_clifford_circuits(count):
    """``count`` structurally distinct Clifford circuits on QUBITS."""
    circuits = []
    for extra in range(count):
        circuit = cirq.Circuit(
            cirq.H(QUBITS[0]), cirq.CNOT(QUBITS[0], QUBITS[1])
        )
        for _ in range(extra):
            circuit.append(cirq.CNOT(QUBITS[1], QUBITS[2]))
            circuit.append(cirq.S(QUBITS[2]))
        circuit.append(cirq.measure(*QUBITS, key="m"))
        circuits.append(circuit)
    return circuits


class TestHeterogeneousBatch:
    """run_batch as one schedulable unit: one program table, one init."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_eight_circuit_batch_single_init_and_serial_parity(
        self, manager, start_method
    ):
        """Acceptance criterion: N distinct circuits, exactly 1 pool init,
        bit-for-bit equal to the per-circuit serial runs."""
        circuits = distinct_clifford_circuits(8)
        serial = sv_sim(19).run_batch(circuits, repetitions=14)
        pooled = sv_sim(
            19,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=start_method, pool_manager=manager
            ),
        ).run_batch(circuits, repetitions=14)
        assert manager.stats["inits"] == 1
        assert_sweeps_equal(serial, pooled)

    def test_repetition_scope_reinitializes_per_circuit(self, manager):
        """The pre-multi-program cost model for contrast: each circuit is
        its own execution key, so N circuits pay N pool inits."""
        circuits = distinct_clifford_circuits(4)
        sim = sv_sim(
            19,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        sim.run_batch(circuits, repetitions=16, scope="repetitions")
        assert manager.stats["inits"] == len(circuits)

    def test_repeated_batch_reuses_pool(self, manager):
        """The Program cache hands the manager the same table objects, so
        an identical batch re-submits to the warm workers."""
        circuits = distinct_clifford_circuits(5)
        sim = sv_sim(
            23,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        first = sim.run_batch(circuits, repetitions=10)
        second = sim.run_batch(circuits, repetitions=10)
        assert manager.stats["inits"] == 1
        assert manager.stats["reuses"] == 1
        assert_sweeps_equal(first, second)

    def test_program_table_content_change_reinitializes(self, manager):
        """Any change to the batch's program table is a new execution key."""
        sim = sv_sim(
            29,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        sim.run_batch(distinct_clifford_circuits(4), repetitions=8)
        sim.run_batch(distinct_clifford_circuits(5), repetitions=8)
        assert manager.stats["inits"] == 2
        assert manager.stats["key_changes"] == 1

    def test_batch_key_covers_table_order_and_content(self):
        """execution_key(programs=...) keys the whole table, in order."""
        sim = sv_sim(0)
        programs = [
            sim.compile(circuit) for circuit in distinct_clifford_circuits(3)
        ]
        key_all = execution_key(sim, programs=tuple(programs))
        assert key_all == execution_key(sim, programs=tuple(programs))
        assert key_all != execution_key(sim, programs=tuple(programs[:2]))
        assert key_all != execution_key(
            sim, programs=tuple(reversed(programs))
        )
        with pytest.raises(ValueError, match="exactly one"):
            execution_key(sim, plan=object(), programs=(object(),))

    def test_batch_with_repeated_circuits_matches_serial(self, manager):
        """Duplicate circuits dedupe to one table entry (same Program
        object) and still reproduce the serial per-index seed streams."""
        circuits = distinct_clifford_circuits(3)
        batch = [circuits[0], circuits[1], circuits[0], circuits[2], circuits[0]]
        serial = sv_sim(31).run_batch(batch, repetitions=12)
        pooled = sv_sim(
            31,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_batch(batch, repetitions=12)
        assert manager.stats["inits"] == 1
        assert_sweeps_equal(serial, pooled)

    def test_batch_with_resolvers_matches_serial(self, manager):
        theta = cirq.Symbol("theta")
        circuits = [parameterized_circuit() for _ in range(3)]
        circuits.append(
            cirq.Circuit(
                cirq.H(QUBITS[1]),
                cirq.Rx(theta).on(QUBITS[0]),
                cirq.measure(*QUBITS, key="m"),
            )
        )
        params = [{"theta": 0.2 * i} for i in range(4)]
        serial = sv_sim(37).run_batch(circuits, params=params, repetitions=9)
        pooled = sv_sim(
            37,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_batch(circuits, params=params, repetitions=9)
        assert manager.stats["inits"] == 1
        assert_sweeps_equal(serial, pooled)

    @pytest.mark.parametrize(
        "make_state, prob_fn, make_circuit, points", BACKENDS
    )
    def test_batch_parity_on_all_backends(
        self, manager, make_state, prob_fn, make_circuit, points
    ):
        circuits = [make_circuit() for _ in range(3)]
        params = [p for p in points[:3]]
        serial = make_sim(make_state, prob_fn, seed=41).run_batch(
            circuits, params=params, repetitions=10
        )
        pooled = make_sim(
            make_state,
            prob_fn,
            seed=41,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_batch(circuits, params=params, repetitions=10)
        assert_sweeps_equal(serial, pooled)

    def test_invalid_scope_raises(self):
        with pytest.raises(ValueError, match="scope"):
            sv_sim(1).run_batch(
                distinct_clifford_circuits(2), repetitions=2, scope="bogus"
            )

    def test_points_scope_without_point_executor_is_serial(self):
        """Regression: explicit point scope must keep the one-stream-per-
        point serial contract even when the executor cannot fan points —
        never the executor's own repetition-chunk geometry."""
        circuits = distinct_clifford_circuits(3)
        serial = sv_sim(43).run_batch(circuits, repetitions=16)
        chunked = sv_sim(43, executor=SerialExecutor(chunks=4)).run_batch(
            circuits, repetitions=16, scope="points"
        )
        assert_sweeps_equal(serial, chunked)


class TestWarmColdEquality:
    def test_warm_and_cold_pools_sample_identically(self, manager):
        circuit = parameterized_circuit()
        warm = sv_sim(
            31,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        ).run_sweep(circuit, PARAM_POINTS, repetitions=12, scope="points")
        cold = sv_sim(
            31,
            executor=ProcessPoolExecutor(
                num_workers=2,
                start_method=START_METHODS[0],
                reuse_pool=False,
            ),
        ).run_sweep(circuit, PARAM_POINTS, repetitions=12, scope="points")
        assert_sweeps_equal(warm, cold)

    def test_warm_and_cold_execute_identically(self, manager):
        circuit = clifford_circuit()

        def run(executor):
            return bgls.Simulator(
                CliffordTableauSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_tableau,
                seed=8,
                executor=executor,
            ).sample_bitstrings(circuit, repetitions=32)

        warm = run(
            ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            )
        )
        cold = run(
            ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], reuse_pool=False
            )
        )
        np.testing.assert_array_equal(warm, cold)


class TestLifecycle:
    def test_context_manager_joins_all_workers(self):
        circuit = parameterized_circuit()
        with PoolManager() as mgr:
            sim = sv_sim(
                1,
                executor=ProcessPoolExecutor(
                    num_workers=2, start_method=START_METHODS[0], pool_manager=mgr
                ),
            )
            sim.run_sweep(circuit, PARAM_POINTS, repetitions=6, scope="points")
            pids = mgr.worker_pids()
            assert pids
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_shutdown_is_idempotent_and_manager_reusable(self, manager):
        circuit = parameterized_circuit()
        executor = ProcessPoolExecutor(
            num_workers=2, start_method=START_METHODS[0], pool_manager=manager
        )
        sim = sv_sim(4, executor=executor)
        sim.run_sweep(circuit, PARAM_POINTS, repetitions=6, scope="points")
        manager.shutdown()
        manager.shutdown()  # no-op
        assert manager.stats["inits"] == 1
        # A new call after shutdown simply builds a fresh pool.
        sim.run_sweep(circuit, PARAM_POINTS, repetitions=6, scope="points")
        assert manager.stats["inits"] == 2

    def test_failed_task_resets_pool(self, manager):
        """A worker-side error surfaces and never leaves a poisoned pool."""
        circuit = parameterized_circuit()
        sim = sv_sim(
            6,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        # Unresolvable sweep: the worker-side specialize raises.
        with pytest.raises(Exception):
            sim.run_sweep(
                circuit, [{"theta": 0.1}, {"wrong": 1.0}], repetitions=4, scope="points"
            )
        assert manager._pool is None  # fail-safe shutdown happened
        # The manager recovers with a fresh pool on the next call.
        good = sim.run_sweep(circuit, PARAM_POINTS, repetitions=6, scope="points")
        serial = sv_sim(6).run_sweep(circuit, PARAM_POINTS, repetitions=6)
        assert_sweeps_equal(good, serial)

    def test_atexit_path_shuts_shared_pool_down(self, tmp_path):
        """A process that never calls shutdown still exits cleanly with no
        surviving workers (the shared manager's atexit hook joins them)."""
        script = tmp_path / "warm_pool_atexit.py"
        script.write_text(
            "import repro as bgls\n"
            "from repro import born\n"
            "from repro import circuits as cirq\n"
            "from repro.sampler import ProcessPoolExecutor\n"
            "from repro.sampler import service\n"
            "from repro.states import StateVectorSimulationState\n"
            "\n"
            "def main():\n"
            "    qs = cirq.LineQubit.range(2)\n"
            "    circ = cirq.Circuit(cirq.H(qs[0]), cirq.CNOT(qs[0], qs[1]),\n"
            "                        cirq.measure(*qs, key='z'))\n"
            "    sim = bgls.Simulator(StateVectorSimulationState(qs), bgls.act_on,\n"
            "                         born.compute_probability_state_vector, seed=1,\n"
            "                         executor=ProcessPoolExecutor(num_workers=2,\n"
            f"                         start_method={START_METHODS[0]!r}))\n"
            "    sim.run_sweep(circ, [None] * 3, repetitions=8, scope='points')\n"
            "    print('PIDS', *service.shared_pool_manager().worker_pids())\n"
            "\n"
            "if __name__ == '__main__':\n"
            "    main()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        pids = [int(p) for p in proc.stdout.split("PIDS", 1)[1].split()]
        assert pids
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_worker_pids_survive_shutdown_for_audits(self, manager):
        circuit = parameterized_circuit()
        sim = sv_sim(
            2,
            executor=ProcessPoolExecutor(
                num_workers=2, start_method=START_METHODS[0], pool_manager=manager
            ),
        )
        sim.run_sweep(circuit, PARAM_POINTS, repetitions=4, scope="points")
        live = manager.worker_pids()
        manager.shutdown()
        assert manager.worker_pids() == live
