"""Error-path contract matrix for the public run APIs.

The service tier (PR 9) feeds user input straight into ``Simulator`` and
the executors, so the error surface is part of the API contract.  This
suite pins the *documented* exception types — not incidental internals —
across the five shipped backends and both executors:

* invalid seed — a negative integer seed raises ``ValueError`` naming
  ``seed`` at the ``Simulator`` boundary (regression: it used to crash
  deep inside NumPy's ``SeedSequence`` on every execution path);
* empty sweep — ``run_sweep`` / ``run_sweep_iter`` /
  ``sample_bitstrings_sweep`` over ``[]`` return no points without
  compiling the (possibly unresolvable) circuit, matching
  ``run_batch([])`` (regression: the eager compile crashed on gates that
  cannot build a matrix while parameterized);
* bare states — compiling against a raw engine state with no qubit
  register raises a ``TypeError`` naming the ``*SimulationState`` fix
  (regression: an opaque ``AttributeError`` escaped from the Program
  cache key);
* repetitions/chunk bounds — ``repetitions < 1`` raises ``ValueError``
  on ``run`` / ``run_sweep`` / ``run_batch`` and on both executors'
  ``execute``; the chunk-geometry helper ``_chunk_sizes`` handles the
  ``repetitions == 0`` corner and rejects bad chunk counts (property
  tested below with hypothesis).
"""

import multiprocessing
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.sampler import PoolManager, ProcessPoolExecutor, SerialExecutor
from repro.sampler.service import _base_seed, _chunk_sizes
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)
from repro.states.chform import StabilizerChForm
from repro.states.tableau import CliffordTableau

N = 3
QUBITS = cirq.LineQubit.range(N)
THETA = cirq.Symbol("theta")


def pooled_start_method():
    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return (methods or [available[0]])[0]


def parameterized_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.Rx(THETA).on(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


def clifford_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.measure(*QUBITS, key="m"),
    )


BACKENDS = [
    pytest.param(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        id="state_vector",
    ),
    pytest.param(
        lambda: DensityMatrixSimulationState(QUBITS),
        born.compute_probability_density_matrix,
        id="density_matrix",
    ),
    pytest.param(
        lambda: StabilizerChFormSimulationState(QUBITS),
        born.compute_probability_stabilizer_state,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableauSimulationState(QUBITS),
        born.compute_probability_tableau,
        id="clifford_tableau",
    ),
    pytest.param(
        lambda: MPSState(QUBITS),
        born.compute_probability_mps,
        id="mps",
    ),
]

# Both executor families.  The error contracts fire before any pool is
# built, so the pooled executor stays cheap here (workers spawn lazily).
EXECUTORS = [
    pytest.param(lambda: None, id="bare"),
    pytest.param(lambda: SerialExecutor(chunks=2), id="serial"),
    pytest.param(
        lambda: ProcessPoolExecutor(
            num_workers=2,
            start_method=pooled_start_method(),
            pool_manager=PoolManager(),
        ),
        id="pooled",
    ),
]


def make_sim(make_state, prob_fn, seed=7, executor=None):
    return bgls.Simulator(
        make_state(), bgls.act_on, prob_fn, seed=seed, executor=executor
    )


# ----------------------------------------------------------------------
# invalid seed
# ----------------------------------------------------------------------

class TestInvalidSeed:
    @pytest.mark.parametrize("make_state,prob_fn", BACKENDS)
    @pytest.mark.parametrize("seed", [-1, -3, np.int64(-5)])
    def test_negative_seed_raises_valueerror_naming_seed(
        self, make_state, prob_fn, seed
    ):
        with pytest.raises(ValueError, match="seed"):
            make_sim(make_state, prob_fn, seed=seed)

    @pytest.mark.parametrize("make_state,prob_fn", BACKENDS)
    def test_valid_seed_forms_accepted(self, make_state, prob_fn):
        for seed in (0, 3, np.int64(4), None, np.random.default_rng(1)):
            make_sim(make_state, prob_fn, seed=seed)

    def test_base_seed_backstop(self):
        # The executor-layer seed collapse rejects negatives too: a
        # negative base would otherwise surface as an opaque NumPy error
        # from SeedSequence inside a worker.
        with pytest.raises(ValueError, match="seed"):
            _base_seed(-3)
        assert _base_seed(5) == 5
        assert _base_seed(None) >= 0

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_all_paths_guarded_by_construction(self, make_executor):
        # Regression for the original report: Simulator(..., seed=-3)
        # crashed serial, chunked, sweep, and pooled paths alike.  The
        # boundary check means no path can even be reached.
        with pytest.raises(ValueError, match="seed"):
            bgls.Simulator(
                StateVectorSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_state_vector,
                seed=-3,
                executor=make_executor(),
            )


# ----------------------------------------------------------------------
# empty sweep
# ----------------------------------------------------------------------

class _SymbolicOnlyGate(cirq.Gate):
    """A third-party-style gate that cannot build a matrix while symbolic.

    ``_is_parameterized_`` stays at the base default (False), so the
    compiler treats it as fixed and builds its record eagerly — exactly
    the shape of gate that made pre-fix empty sweeps crash inside
    ``compile`` instead of returning ``[]``.
    """

    def __init__(self, exponent):
        self.exponent = exponent

    def num_qubits(self):
        return 1

    def _unitary_(self):
        phase = np.exp(1j * np.pi * self.exponent)  # TypeError on Symbol
        return np.array([[1, 0], [0, phase]], dtype=np.complex128)


class TestEmptySweep:
    @pytest.mark.parametrize("make_state,prob_fn", BACKENDS)
    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_empty_sweep_returns_no_points(
        self, make_state, prob_fn, make_executor
    ):
        sim = make_sim(make_state, prob_fn, executor=make_executor())
        circuit = parameterized_circuit()
        assert sim.run_sweep(circuit, [], repetitions=4) == []
        assert list(sim.run_sweep_iter(circuit, [], repetitions=4)) == []
        assert sim.sample_bitstrings_sweep(circuit, [], repetitions=4) == []

    def test_empty_sweep_skips_compilation(self):
        # The short-circuit must come *before* compile: this circuit
        # cannot compile at all while its parameter is unresolved.
        circuit = cirq.Circuit(
            _SymbolicOnlyGate(THETA).on(QUBITS[0]),
            cirq.measure(*QUBITS, key="m"),
        )
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
        )
        with pytest.raises(TypeError):
            sim.compile(circuit)
        assert sim.run_sweep(circuit, [], repetitions=4) == []

    def test_empty_batch_still_empty(self):
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
        )
        assert sim.run_batch([], repetitions=4) == []


# ----------------------------------------------------------------------
# bare states on the Program path
# ----------------------------------------------------------------------

BARE_STATES = [
    pytest.param(
        lambda: StabilizerChForm(num_qubits=N),
        born.compute_probability_stabilizer_state,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableau(num_qubits=N),
        born.compute_probability_tableau,
        id="clifford_tableau",
    ),
]


class TestBareStates:
    @pytest.mark.parametrize("make_state,prob_fn", BARE_STATES)
    def test_every_program_api_raises_typed_error(self, make_state, prob_fn):
        sim = bgls.Simulator(make_state(), bgls.act_on, prob_fn, seed=1)
        circuit = clifford_circuit()
        for call in (
            lambda: sim.compile(circuit),
            lambda: sim.run(circuit, repetitions=2),
            lambda: sim.run_sweep(circuit, [None], repetitions=2),
            lambda: sim.run_batch([circuit], repetitions=2),
        ):
            with pytest.raises(TypeError, match="SimulationState"):
                call()

    def test_error_names_state_type_and_fix(self):
        sim = bgls.Simulator(
            StabilizerChForm(num_qubits=N),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=1,
        )
        with pytest.raises(TypeError, match="StabilizerChForm"):
            sim.compile(clifford_circuit())

    def test_wrapped_state_still_compiles(self):
        sim = bgls.Simulator(
            StabilizerChFormSimulationState(QUBITS),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            seed=1,
        )
        assert sim.run(clifford_circuit(), repetitions=2) is not None


# ----------------------------------------------------------------------
# repetition / chunk bounds
# ----------------------------------------------------------------------

class TestRepetitionBounds:
    @pytest.mark.parametrize("make_state,prob_fn", BACKENDS)
    @pytest.mark.parametrize("make_executor", EXECUTORS)
    @pytest.mark.parametrize("repetitions", [0, -2])
    def test_bad_repetitions_raise_valueerror(
        self, make_state, prob_fn, make_executor, repetitions
    ):
        sim = make_sim(make_state, prob_fn, executor=make_executor())
        circuit = clifford_circuit()
        with pytest.raises(ValueError, match="repetitions"):
            sim.run(circuit, repetitions=repetitions)
        with pytest.raises(ValueError, match="repetitions"):
            sim.run_sweep(circuit, [None], repetitions=repetitions)
        with pytest.raises(ValueError, match="repetitions"):
            sim.run_batch([circuit], repetitions=repetitions)

    @pytest.mark.parametrize(
        "make_executor", EXECUTORS[1:]
    )  # the two real executors
    def test_executor_execute_guards_repetitions(self, make_executor):
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
        )
        plan = sim.compile(clifford_circuit()).specialize(None)
        with pytest.raises(ValueError, match="repetitions"):
            make_executor().execute(sim, plan, repetitions=0)


class TestChunkSizesProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        repetitions=st.integers(min_value=0, max_value=10_000),
        num_chunks=st.integers(min_value=1, max_value=128),
    )
    def test_partition_contract(self, repetitions, num_chunks):
        sizes = _chunk_sizes(repetitions, num_chunks)
        assert sum(sizes) == repetitions
        assert len(sizes) <= num_chunks
        if repetitions == 0:
            assert sizes == []
        else:
            assert all(size >= 1 for size in sizes)
            assert max(sizes) - min(sizes) <= 1

    @settings(max_examples=50, deadline=None)
    @given(
        repetitions=st.integers(min_value=-1_000, max_value=-1),
        num_chunks=st.integers(min_value=1, max_value=16),
    )
    def test_negative_repetitions_rejected(self, repetitions, num_chunks):
        with pytest.raises(ValueError, match="repetitions"):
            _chunk_sizes(repetitions, num_chunks)

    @settings(max_examples=50, deadline=None)
    @given(
        repetitions=st.integers(min_value=0, max_value=1_000),
        num_chunks=st.integers(min_value=-16, max_value=0),
    )
    def test_bad_chunk_count_rejected(self, repetitions, num_chunks):
        with pytest.raises(ValueError, match="num_chunks"):
            _chunk_sizes(repetitions, num_chunks)


# ----------------------------------------------------------------------
# scope / trajectory_mode — the shared request normalizer
# ----------------------------------------------------------------------

class TestRequestNormalizer:
    """The six run* entry points share one validation front door
    (``repro.sampler.requests``): identical errors regardless of which
    entry point a bad argument hits."""

    def _sim(self, executor=None):
        return make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            executor=executor,
        )

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_bad_scope_same_error_everywhere(self, make_executor):
        sim = self._sim(executor=make_executor())
        circuit = clifford_circuit()
        messages = set()
        for call in (
            lambda: sim.run_sweep(circuit, [None], scope="bogus"),
            lambda: list(sim.run_sweep_iter(circuit, [None], scope="bogus")),
            lambda: sim.run_batch([circuit], scope="bogus"),
            lambda: list(sim.run_batch_iter([circuit], scope="bogus")),
            lambda: sim.sample_bitstrings_sweep(circuit, [None], scope="bogus"),
        ):
            with pytest.raises(ValueError, match="scope") as excinfo:
                call()
            messages.add(str(excinfo.value))
        assert len(messages) == 1

    def test_scope_error_is_eager_for_iterators(self):
        # Validation happens at the call, not at first next() — a bad
        # scope never produces a generator that blows up later.
        sim = self._sim()
        with pytest.raises(ValueError, match="scope"):
            sim.run_batch_iter([clifford_circuit()], scope="nope")

    def test_bad_trajectory_mode_at_construction(self):
        with pytest.raises(ValueError, match="trajectory_mode"):
            bgls.Simulator(
                StateVectorSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_state_vector,
                trajectory_mode="sometimes",
            )

    def test_bad_trajectory_tile_at_construction(self):
        with pytest.raises(ValueError, match="trajectory_tile"):
            bgls.Simulator(
                StateVectorSimulationState(QUBITS),
                bgls.act_on,
                born.compute_probability_state_vector,
                trajectory_tile=0,
            )

    def test_batch_length_mismatch_still_pinned(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="resolvers"):
            sim.run_batch([clifford_circuit()], params=[None, None])
