"""Tests for the conventional qubit-by-qubit baseline and exact sampler."""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, total_variation_distance
from repro.sampler import ExactDistributionSampler, QubitByQubitSimulator
from repro.states import StateVectorSimulationState


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


def exact_probs(circuit, qubits):
    return (
        np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qubits)
        )
        ** 2
    )


class TestQubitByQubitSimulator:
    def test_distribution_matches_exact(self, qubits):
        circuit = cirq.generate_random_circuit(qubits, 10, random_state=1)
        sim = QubitByQubitSimulator(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        bits = sim.sample_bitstrings(circuit, repetitions=3000)
        tv = total_variation_distance(
            empirical_distribution(bits, 3), exact_probs(circuit, qubits)
        )
        assert tv < 0.05

    def test_run_records(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(qubits[0], qubits[1], key="z"),
        )
        result = sim_result = QubitByQubitSimulator(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        ).run(circuit, repetitions=300)
        hist = result.histogram("z")
        assert set(hist) <= {0, 3}

    def test_requires_measurement_for_run(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        sim = QubitByQubitSimulator(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        with pytest.raises(ValueError, match="no measurements"):
            sim.run(circuit)

    def test_rejects_mid_circuit_measurement(self, qubits):
        circuit = cirq.Circuit(
            cirq.measure(qubits[0], key="m"), cirq.H(qubits[0])
        )
        sim = QubitByQubitSimulator(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        with pytest.raises(ValueError, match="terminal"):
            sim.run(circuit)

    def test_agreement_with_bgls(self, qubits):
        circuit = cirq.generate_random_circuit(qubits, 8, random_state=4)
        baseline = QubitByQubitSimulator(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        gate_by_gate = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=1,
        )
        p_base = empirical_distribution(
            baseline.sample_bitstrings(circuit, 3000), 3
        )
        p_bgls = empirical_distribution(
            gate_by_gate.sample_bitstrings(circuit, 3000), 3
        )
        assert total_variation_distance(p_base, p_bgls) < 0.06


class TestExactDistributionSampler:
    def test_final_distribution_exact(self, qubits):
        circuit = cirq.generate_random_circuit(qubits, 10, random_state=2)
        sampler = ExactDistributionSampler(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        np.testing.assert_allclose(
            sampler.final_distribution(circuit),
            exact_probs(circuit, qubits),
            atol=1e-9,
        )

    def test_samples_follow_distribution(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.H(qubits[1]))
        sampler = ExactDistributionSampler(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        bits = sampler.sample_bitstrings(circuit, repetitions=4000)
        emp = empirical_distribution(bits, 3)
        expected = np.array([0.25, 0, 0.25, 0, 0.25, 0, 0.25, 0])
        assert total_variation_distance(emp, expected) < 0.05

    def test_parametric_circuit(self, qubits):
        import math

        t = cirq.Symbol("t")
        circuit = cirq.Circuit(cirq.Rx(t).on(qubits[0]))
        sampler = ExactDistributionSampler(
            StateVectorSimulationState(qubits), bgls.act_on, seed=0
        )
        probs = sampler.final_distribution(
            circuit, param_resolver={"t": math.pi}
        )
        assert probs[4] == pytest.approx(1.0)  # qubit 0 flipped (big-endian)
