"""Tests for the application layer: GHZ builders, workloads, QAOA MaxCut."""

import math

import networkx as nx
import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps import (
    average_cut,
    brute_force_maxcut,
    cut_value,
    ghz_circuit,
    qaoa_maxcut_circuit,
    random_fixed_cnot_circuit,
    random_ghz_circuit,
    random_graph,
    random_shallow_circuit,
    solve_maxcut,
    sweep_parameters,
)
from repro.mps import MPSOptions, MPSState
from repro.states import StateVectorSimulationState


class TestGHZ:
    def test_linear_ghz_state(self):
        circuit = ghz_circuit(4, measure_key=None)
        psi = circuit.final_state_vector()
        np.testing.assert_allclose(abs(psi[0]) ** 2, 0.5, atol=1e-9)
        np.testing.assert_allclose(abs(psi[-1]) ** 2, 0.5, atol=1e-9)
        assert np.abs(psi[1:-1]).max() < 1e-12

    def test_measure_key_included(self):
        circuit = ghz_circuit(3)
        assert circuit.all_measurement_keys() == ["z"]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_ghz_is_still_ghz(self, seed):
        """Random CNOT sequencing produces exactly the GHZ state."""
        circuit = random_ghz_circuit(5, random_state=seed)
        probs = np.abs(circuit.final_state_vector()) ** 2
        np.testing.assert_allclose(probs[0], 0.5, atol=1e-9)
        np.testing.assert_allclose(probs[-1], 0.5, atol=1e-9)

    def test_random_ghz_connectivity_varies(self):
        reprs = {repr(random_ghz_circuit(6, random_state=s)) for s in range(6)}
        assert len(reprs) > 1


class TestWorkloads:
    def test_fixed_cnot_count(self):
        circuit = random_fixed_cnot_circuit(8, 4, 5, random_state=0)
        n_cnot = sum(
            1 for op in circuit.all_operations() if len(op.qubits) == 2
        )
        assert n_cnot == 5

    def test_shallow_depth(self):
        circuit = random_shallow_circuit(10, 6, random_state=0)
        assert circuit.depth() == 6

    def test_shallow_circuit_bounded_entanglement(self):
        """Shallow sparse circuits keep MPS bonds small (Fig. 7a premise)."""
        qs = cirq.LineQubit.range(10)
        circuit = random_shallow_circuit(qs, 4, cnot_probability=0.2, random_state=1)
        mps = MPSState(qs)
        for op in circuit.all_operations():
            bgls.act_on(op, mps)
        assert mps.max_bond_dimension() <= 4


class TestMaxCutPrimitives:
    def test_cut_value(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2)])
        assert cut_value(g, [0, 1, 1]) == 2
        assert cut_value(g, [0, 0, 0]) == 0
        assert cut_value(g, [0, 1, 0]) == 2

    def test_average_cut(self):
        g = nx.Graph([(0, 1)])
        samples = np.array([[0, 1], [0, 0]])
        assert average_cut(g, samples) == pytest.approx(0.5)

    def test_brute_force_triangle(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2)])
        best, bits = brute_force_maxcut(g)
        assert best == 2
        assert cut_value(g, bits) == 2

    def test_brute_force_bipartite_is_full_cut(self):
        g = nx.complete_bipartite_graph(3, 3)
        best, _ = brute_force_maxcut(g)
        assert best == 9

    def test_random_graph_nonempty(self):
        g = random_graph(10, 0.3, random_state=0)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() > 0


class TestQAOACircuit:
    def test_structure(self):
        g = nx.Graph([(0, 1), (1, 2)])
        circuit = qaoa_maxcut_circuit(g, 0.4, 0.3)
        ops = list(circuit.all_operations())
        n_cnot = sum(1 for op in ops if op.gate == cirq.CNOT)
        assert n_cnot == 2 * g.number_of_edges()
        assert circuit.all_measurement_keys() == ["z"]

    def test_parametric_template_resolves(self):
        g = nx.Graph([(0, 1)])
        gamma, beta = cirq.Symbol("gamma"), cirq.Symbol("beta")
        template = qaoa_maxcut_circuit(g, gamma, beta)
        assert template._is_parameterized_()
        resolved = template.resolve_parameters({"gamma": 0.5, "beta": 0.25})
        assert not resolved._is_parameterized_()

    def test_zero_angles_give_uniform_distribution(self):
        g = nx.Graph([(0, 1), (1, 2)])
        circuit = qaoa_maxcut_circuit(g, 0.0, 0.0, measure_key=None)
        probs = np.abs(circuit.final_state_vector()) ** 2
        np.testing.assert_allclose(probs, np.ones(8) / 8, atol=1e-9)

    def test_layers_repeat(self):
        g = nx.Graph([(0, 1)])
        one = qaoa_maxcut_circuit(g, 0.1, 0.2, layers=1, measure_key=None)
        two = qaoa_maxcut_circuit(g, 0.1, 0.2, layers=2, measure_key=None)
        # One extra (cost + mixer) block: 3 ops per edge + 1 mixer per qubit.
        per_layer = 3 * g.number_of_edges() + g.number_of_nodes()
        assert two.num_operations() == one.num_operations() + per_layer

    def test_cost_unitary_is_diagonal_phase(self):
        """CNOT-Rz-CNOT implements exp(-i gamma/2 Z Z) up to phase."""
        g = nx.Graph([(0, 1)])
        gamma = 0.73
        circuit = qaoa_maxcut_circuit(g, gamma, 0.0, measure_key=None)
        # strip the trailing mixer (beta=0 -> Rx(0) = I up to phase) and H's
        u = circuit.unitary()
        h2 = np.kron(
            np.array([[1, 1], [1, -1]]) / math.sqrt(2),
            np.array([[1, 1], [1, -1]]) / math.sqrt(2),
        )
        core = u @ h2  # undo initial Hadamards
        zz = np.diag([1, -1, -1, 1]).astype(float)
        from scipy.linalg import expm

        expected = expm(-1j * gamma / 2 * zz)
        inner = np.vdot(expected.ravel(), core.ravel())
        assert abs(inner) / 4 == pytest.approx(1.0, abs=1e-9)


class TestQAOAEndToEnd:
    def _sv_sampler(self, qubits, seed=0):
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=seed,
        )
        return lambda circuit, reps: sim.sample_bitstrings(circuit, reps)

    def test_sweep_shape(self):
        g = nx.Graph([(0, 1), (1, 2)])
        qs = cirq.LineQubit.range(3)
        grid = sweep_parameters(
            g, self._sv_sampler(qs), gammas=[0.1, 0.5], betas=[0.2, 0.4, 0.6],
            repetitions=30,
        )
        assert grid.shape == (2, 3)
        assert np.all(grid >= 0)

    def test_solve_small_graph_finds_optimum(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        qs = cirq.LineQubit.range(4)
        result = solve_maxcut(
            g, self._sv_sampler(qs), grid_size=6,
            sweep_repetitions=60, final_repetitions=300,
        )
        optimum, _ = brute_force_maxcut(g)
        assert result.best_cut == optimum  # small graph: sampling finds it
        assert cut_value(g, result.best_bitstring) == result.best_cut
        left, right = result.partition()
        assert sorted(left + right) == [0, 1, 2, 3]

    def test_solve_with_mps_bounded_bond(self):
        """The paper's configuration: MPS with restricted chi."""
        g = random_graph(6, 0.3, random_state=2)
        qs = cirq.LineQubit.range(6)
        sim = bgls.Simulator(
            MPSState(qs, options=MPSOptions(max_bond=8)),
            bgls.act_on,
            born.compute_probability_mps,
            seed=0,
        )
        sampler = lambda circuit, reps: sim.sample_bitstrings(circuit, reps)
        result = solve_maxcut(
            g, sampler, grid_size=4, sweep_repetitions=25, final_repetitions=80
        )
        optimum, _ = brute_force_maxcut(g)
        assert 0 < result.best_cut <= optimum
        # QAOA p=1 + sampling should land near the optimum on tiny graphs.
        assert result.best_cut >= max(1, optimum - 1)


class TestQAOASimulatorSweepPath:
    """Passing a BGLS Simulator routes the grid through run_sweep's cached
    Program: one compilation for the whole (gamma, beta) grid."""

    def _sv_simulator(self, qubits, seed=0):
        return bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=seed,
        )

    def test_sweep_accepts_simulator_and_compiles_once(self):
        from repro.sampler import clear_program_cache, program_cache_info

        g = nx.Graph([(0, 1), (1, 2)])
        qs = cirq.LineQubit.range(3)
        clear_program_cache()
        grid = sweep_parameters(
            g,
            self._sv_simulator(qs),
            gammas=[0.1, 0.5],
            betas=[0.2, 0.4, 0.6],
            repetitions=30,
        )
        assert grid.shape == (2, 3)
        assert np.all(grid >= 0)
        assert program_cache_info()["misses"] == 1  # whole grid, one compile
        clear_program_cache()

    def test_solve_with_simulator_finds_optimum(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        qs = cirq.LineQubit.range(4)
        result = solve_maxcut(
            g,
            self._sv_simulator(qs),
            grid_size=6,
            sweep_repetitions=60,
            final_repetitions=300,
        )
        optimum, _ = brute_force_maxcut(g)
        assert result.best_cut == optimum
