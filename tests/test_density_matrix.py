"""Tests for the density-matrix simulation state."""

import itertools

import numpy as np
import pytest

from repro import circuits as cirq
from repro.protocols import act_on, kraus
from repro.states import DensityMatrixSimulationState, StateVectorSimulationState


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(2)


class TestInitialization:
    def test_basis_state(self, qubits):
        s = DensityMatrixSimulationState(qubits, initial_state=0b10)
        rho = s.density_matrix()
        assert rho[2, 2] == pytest.approx(1.0)
        assert np.trace(rho) == pytest.approx(1.0)

    def test_from_pure_vector(self, qubits):
        vec = np.zeros(4, dtype=complex)
        vec[1] = 1.0
        s = DensityMatrixSimulationState(qubits, initial_state=vec)
        assert s.probability_of([0, 1]) == pytest.approx(1.0)

    def test_from_density_matrix(self, qubits):
        rho = np.eye(4, dtype=complex) / 4
        s = DensityMatrixSimulationState(qubits, initial_state=rho)
        np.testing.assert_allclose(s.diagonal_probabilities(), [0.25] * 4)

    def test_rejects_traceless(self, qubits):
        with pytest.raises(ValueError, match="trace"):
            DensityMatrixSimulationState(qubits, initial_state=np.eye(4))


class TestUnitaryEvolution:
    def test_matches_pure_state_on_unitary_circuits(self):
        qs = cirq.LineQubit.range(3)
        circ = cirq.generate_random_circuit(qs, 12, random_state=4)
        sv = StateVectorSimulationState(qs)
        dm = DensityMatrixSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, sv)
            act_on(op, dm)
        psi = sv.state_vector()
        np.testing.assert_allclose(
            dm.density_matrix(), np.outer(psi, psi.conj()), atol=1e-9
        )

    def test_trace_preserved(self):
        qs = cirq.LineQubit.range(3)
        circ = cirq.generate_random_circuit(qs, 10, random_state=5)
        dm = DensityMatrixSimulationState(qs)
        for op in circ.all_operations():
            act_on(op, dm)
        assert np.trace(dm.density_matrix()).real == pytest.approx(1.0)


class TestChannels:
    def test_exact_channel_application(self, qubits):
        dm = DensityMatrixSimulationState(qubits)
        act_on(cirq.H(qubits[0]), dm)
        act_on(cirq.bit_flip(0.3)(qubits[1]), dm)
        np.testing.assert_allclose(
            dm.diagonal_probabilities(), [0.35, 0.15, 0.35, 0.15], atol=1e-9
        )

    def test_depolarize_diagonal(self, qubits):
        dm = DensityMatrixSimulationState(qubits)
        act_on(cirq.depolarize(0.75)(qubits[0]), dm)
        np.testing.assert_allclose(
            dm.diagonal_probabilities(), [0.5, 0.0, 0.5, 0.0], atol=1e-9
        )

    def test_manual_kraus_sum_agreement(self, qubits):
        channel = cirq.amplitude_damp(0.4)
        dm = DensityMatrixSimulationState(qubits)
        act_on(cirq.H(qubits[0]), dm)
        rho_before = dm.density_matrix()
        act_on(channel(qubits[0]), dm)
        ks = [np.kron(k, np.eye(2)) for k in kraus(channel)]
        expected = sum(k @ rho_before @ k.conj().T for k in ks)
        np.testing.assert_allclose(dm.density_matrix(), expected, atol=1e-9)

    def test_exact_channels_flag(self, qubits):
        assert DensityMatrixSimulationState(qubits)._exact_channels_


class TestProbabilities:
    def test_candidate_probabilities_match_loop(self):
        qs = cirq.LineQubit.range(4)
        dm = DensityMatrixSimulationState(qs)
        circ = cirq.generate_random_circuit(qs, 8, random_state=6)
        for op in circ.all_operations():
            act_on(op, dm)
        act_on(cirq.depolarize(0.2)(qs[1]), dm)
        bits = [1, 0, 0, 1]
        for support in ([0], [1, 3], [2, 0]):
            fast = dm.candidate_probabilities(bits, support)
            for idx, cand in enumerate(
                itertools.product([0, 1], repeat=len(support))
            ):
                full = list(bits)
                for axis, b in zip(support, cand):
                    full[axis] = b
                assert fast[idx] == pytest.approx(
                    dm.probability_of(full), abs=1e-12
                )

    def test_diagonal_sums_to_one(self, qubits):
        dm = DensityMatrixSimulationState(qubits)
        act_on(cirq.H(qubits[0]), dm)
        act_on(cirq.phase_damp(0.5)(qubits[0]), dm)
        assert dm.diagonal_probabilities().sum() == pytest.approx(1.0)


class TestMeasurement:
    def test_deterministic(self, qubits):
        dm = DensityMatrixSimulationState(qubits, initial_state=0b01, seed=0)
        assert dm.measure([0, 1]) == [0, 1]

    def test_collapse_correlations(self, qubits):
        for seed in range(20):
            dm = DensityMatrixSimulationState(qubits, seed=seed)
            act_on(cirq.H(qubits[0]), dm)
            act_on(cirq.CNOT(qubits[0], qubits[1]), dm)
            a = dm.measure([0])[0]
            b = dm.measure([1])[0]
            assert a == b

    def test_project(self, qubits):
        dm = DensityMatrixSimulationState(qubits)
        act_on(cirq.H(qubits[0]), dm)
        dm.project([0], [1])
        assert dm.probability_of([1, 0]) == pytest.approx(1.0)
        assert np.trace(dm.density_matrix()).real == pytest.approx(1.0)

    def test_project_impossible_raises(self, qubits):
        dm = DensityMatrixSimulationState(qubits)
        with pytest.raises(ValueError):
            dm.project([0], [1])

    def test_mixed_state_measure_statistics(self):
        qs = cirq.LineQubit.range(1)
        ones = 0
        for seed in range(300):
            dm = DensityMatrixSimulationState(qs, seed=seed)
            act_on(cirq.bit_flip(0.25)(qs[0]), dm)
            ones += dm.measure([0])[0]
        assert 0.15 < ones / 300 < 0.35


def test_copy_independent(qubits):
    dm = DensityMatrixSimulationState(qubits)
    c = dm.copy()
    act_on(cirq.X(qubits[0]), c)
    assert dm.probability_of([0, 0]) == pytest.approx(1.0)
    assert c.probability_of([1, 0]) == pytest.approx(1.0)
