"""Cross-module integration tests for the extension systems.

Each test chains at least two subsystems end to end: transpile -> sampler,
noise model -> trajectories -> analysis, apps -> parallel sampling, etc.
"""

import numpy as np
import pytest

from repro import apps, born
from repro import circuits as cirq
from repro.analysis import (
    bootstrap_confidence_interval,
    empirical_distribution,
    fractional_overlap,
)
from repro.circuits import channels, pauli_string_from_text
from repro.noise import ConstantNoiseModel, ReadoutErrorModel, apply_noise
from repro.protocols import act_on
from repro.sampler import (
    Simulator,
    act_on_near_clifford,
    act_on_near_clifford_with_pauli_noise,
)
from repro.states import (
    CliffordTableauSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)
from repro.transpile import DecomposeMultiQubitGates, t_count


def sv_simulator(qubits, seed=0):
    return Simulator(
        initial_state=StateVectorSimulationState(qubits),
        apply_op=lambda op, s: act_on(op, s),
        compute_probability=born.compute_probability_state_vector,
        seed=seed,
    )


class TestToffoliOnStabilizerBackend:
    """Toffoli circuit -> Clifford+T lowering -> sum-over-Cliffords.

    The stabilizer state cannot apply a Toffoli; the transpiler lowers it
    to 7 T gates, which act_on_near_clifford expands stochastically.  The
    sampled distribution must approximate the exact one.
    """

    def test_half_adder_distribution(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.H.on(qs[1]),
            cirq.TOFFOLI.on(*qs),
            cirq.measure(*qs, key="z"),
        )
        lowered = DecomposeMultiQubitGates()(circuit)
        assert t_count(lowered) == 7

        exact = np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qs)
        ) ** 2
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qs),
            apply_op=act_on_near_clifford,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=11,
        )
        reps = 6000
        bits = sim.sample_bitstrings(lowered, repetitions=reps)
        emp = empirical_distribution(bits, 3)
        # 2^7 = 128 stabilizer branches: at 7 T gates the stochastic
        # sum-over-Cliffords overlap collapses toward the uniform floor of
        # 0.5 — exactly the Fig. 5 degradation the paper reports.  The
        # integration claim is that the whole stack runs and stays at or
        # above that floor, not that 7 T's sample accurately.
        overlap = fractional_overlap(emp, exact)
        assert 0.45 < overlap < 0.9

    def test_single_t_stays_accurate(self):
        """With one T gate (2 branches) the sampled overlap stays high."""
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.T.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.H.on(qs[0]),
            cirq.measure(*qs, key="z"),
        )
        exact = np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qs)
        ) ** 2
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qs),
            apply_op=act_on_near_clifford,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=13,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=8000)
        emp = empirical_distribution(bits, 2)
        assert fractional_overlap(emp, exact) > 0.85


class TestPipelineThenStabilizer:
    def test_optimized_clifford_circuit_on_tableau(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.random_clifford_circuit(qs, 12, random_state=2)
        circuit.append(cirq.H.on(qs[0]))
        circuit.append(cirq.H.on(qs[0]))  # cancels
        circuit.append(cirq.measure(qs[0], qs[1], key="z"))
        # Light-cone + cancellation, but keep gates Clifford (no 1q merge
        # into MatrixGate, which the tableau cannot apply).
        from repro.transpile import (
            CancelAdjacentInverses,
            DropEmptyMoments,
            LightConeReduction,
            PassManager,
        )

        pm = PassManager(
            [LightConeReduction(), CancelAdjacentInverses(), DropEmptyMoments()]
        )
        optimized = pm.run(circuit)
        assert optimized.num_operations() < circuit.num_operations()

        sim = Simulator(
            initial_state=CliffordTableauSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_tableau,
            seed=3,
        )
        ref = sv_simulator(qs, seed=4)
        reps = 1500

        def hist(result):
            h = np.zeros(4)
            for row in result.measurements["z"]:
                h[2 * row[0] + row[1]] += 1
            return h / reps

        tv = 0.5 * np.abs(
            hist(sim.run(optimized, repetitions=reps))
            - hist(ref.run(circuit, repetitions=reps))
        ).sum()
        assert tv < 0.1


class TestNoiseModelPlusReadout:
    def test_full_noisy_stack_with_readout(self):
        """Noise model rewrite -> trajectories -> readout corruption."""
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.measure(*qs, key="z"),
        )
        noisy = apply_noise(
            circuit, ConstantNoiseModel(channels.depolarize(0.05))
        )
        result = sv_simulator(qs, seed=5).run(noisy, repetitions=2000)
        readout = ReadoutErrorModel(p0_to_1=0.1, p1_to_0=0.1)
        corrupted = readout.apply_to_result(result, rng=6)

        clean_agree = np.mean(
            result.measurements["z"][:, 0] == result.measurements["z"][:, 1]
        )
        noisy_agree = np.mean(
            corrupted.measurements["z"][:, 0]
            == corrupted.measurements["z"][:, 1]
        )
        # Readout error strictly degrades the GHZ correlation.
        assert noisy_agree < clean_agree
        assert clean_agree > 0.85


class TestBootstrapOnSampledOverlap:
    def test_overlap_confidence_interval_brackets_ideal(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]),
            cirq.CNOT.on(qs[0], qs[1]),
            cirq.measure(*qs, key="z"),
        )
        bits = sv_simulator(qs, seed=7).sample_bitstrings(
            circuit, repetitions=2000
        )
        ideal = np.array([0.5, 0.0, 0.0, 0.5])

        def overlap(samples):
            return fractional_overlap(
                empirical_distribution(samples, 2), ideal
            )

        point, lo, hi = bootstrap_confidence_interval(bits, overlap, rng=8)
        assert 0.9 < lo <= point <= hi <= 1.0


class TestPauliObservablesAcrossBackends:
    def test_tfim_energy_sv_vs_pauli_sampling(self):
        """The VQE Hamiltonian as a PauliSum, sampled term by term."""
        problem = apps.TFIMProblem(num_sites=3, coupling=1.0, field=0.7)
        qs = cirq.LineQubit.range(3)
        params = (0.4, 0.9)
        resolver = cirq.ParamResolver({"g0": params[0], "b0": params[1]})
        prep = apps.tfim_ansatz_circuit(
            problem, layers=1, measure_key=None
        ).resolve_parameters(resolver)
        psi = prep.final_state_vector(qubit_order=qs)

        # H = -J sum ZZ - h sum X as Pauli strings.
        strings = []
        for i, j in problem.bonds():
            strings.append(
                pauli_string_from_text(
                    "".join("Z" if k in (i, j) else "I" for k in range(3)),
                    qs,
                    coefficient=-problem.coupling,
                )
            )
        for i in range(3):
            strings.append(
                pauli_string_from_text(
                    "".join("X" if k == i else "I" for k in range(3)),
                    qs,
                    coefficient=-problem.field,
                )
            )

        want = apps.exact_energy_of_parameters(problem, params, layers=1)
        dense = sum(
            s.expectation_from_state_vector(psi, qs).real for s in strings
        )
        assert dense == pytest.approx(want, abs=1e-9)

        sampled = 0.0
        for k, string in enumerate(strings):
            circuit = prep.copy()
            circuit.append(string.measurement_basis_change())
            circuit.append(cirq.measure(*qs, key="m"))
            samples = sv_simulator(qs, seed=10 + k).run(
                circuit, repetitions=3000
            ).measurements["m"]
            sampled += string.expectation_from_samples(samples, qs)
        assert sampled == pytest.approx(want, abs=0.15)


class TestNoisyNearCliffordAtModerateWidth:
    def test_ten_qubit_noisy_clifford_t(self):
        """The full stack the dense simulator could not scale past ~25q."""
        n = 10
        qs = cirq.LineQubit.range(n)
        circuit = cirq.random_clifford_circuit(qs, 10, random_state=4)
        ops = list(circuit.all_operations())
        noisy = cirq.Circuit()
        for op in ops:
            noisy.append(op)
        noisy.append(cirq.T.on(qs[0]))
        noisy.append(channels.depolarize(0.02).on(qs[0]))
        noisy.append(cirq.measure(*qs, key="z"))

        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qs),
            apply_op=act_on_near_clifford_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=12,
        )
        result = sim.run(noisy, repetitions=50)
        assert result.measurements["z"].shape == (50, n)
