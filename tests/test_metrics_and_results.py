"""Tests for circuit metrics and Result merge/serialization."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import (
    channels,
    compute_metrics,
    entangling_depth,
    interaction_graph,
    summarize,
)
from repro.sampler import Result


def sample_circuit():
    qs = cirq.LineQubit.range(3)
    return qs, cirq.Circuit(
        cirq.H.on(qs[0]),
        cirq.CNOT.on(qs[0], qs[1]),
        cirq.T.on(qs[1]),
        channels.depolarize(0.1).on(qs[2]),
        cirq.TOFFOLI.on(*qs),
        cirq.measure(*qs, key="z"),
    )


class TestMetrics:
    def test_counts(self):
        _, circuit = sample_circuit()
        m = compute_metrics(circuit)
        assert m.num_qubits == 3
        assert m.num_operations == 6
        assert m.one_qubit_gates == 2  # H, T
        assert m.two_qubit_gates == 1  # CNOT
        assert m.multi_qubit_gates == 1  # TOFFOLI
        assert m.num_measurements == 1
        assert m.num_channels == 1

    def test_gate_histogram(self):
        _, circuit = sample_circuit()
        m = compute_metrics(circuit)
        assert m.gate_histogram["CXPowGate"] == 1
        assert m.gate_histogram["ZPowGate"] == 1  # T
        assert m.gate_histogram["DepolarizingChannel"] == 1

    def test_qubit_depths(self):
        qs, circuit = sample_circuit()
        m = compute_metrics(circuit)
        # q0: H, CNOT, TOFFOLI, measure = 4
        assert m.qubit_depths[qs[0]] == 4
        assert m.max_qubit_depth == 4

    def test_parallelism_of_one_moment(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit()
        circuit.append_new_moment([cirq.X.on(qs[0]), cirq.X.on(qs[1])])
        assert compute_metrics(circuit).parallelism == 2.0

    def test_empty_circuit(self):
        m = compute_metrics(cirq.Circuit())
        assert m.num_operations == 0
        assert m.max_qubit_depth == 0
        assert m.parallelism == 0.0

    def test_interaction_graph_edges(self):
        qs, circuit = sample_circuit()
        graph = interaction_graph(circuit)
        # CNOT(0,1) + TOFFOLI gives (0,1) twice, (0,2), (1,2) once each.
        assert graph[qs[0]][qs[1]]["weight"] == 2
        assert graph[qs[0]][qs[2]]["weight"] == 1
        assert graph.number_of_edges() == 3

    def test_entangling_depth_counts_only_multiqubit_moments(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit()
        circuit.append_new_moment([cirq.H.on(qs[0])])
        circuit.append_new_moment([cirq.CNOT.on(qs[0], qs[1])])
        circuit.append_new_moment([cirq.T.on(qs[1])])
        assert entangling_depth(circuit) == 1

    def test_summary_mentions_everything(self):
        _, circuit = sample_circuit()
        text = summarize(circuit)
        assert "qubits=3" in text
        assert "entangling_depth=" in text
        assert "CXPowGate" in text


class TestResultUtilities:
    def test_merge_concatenates(self):
        a = Result({"z": np.array([[0, 0], [1, 1]])})
        b = Result({"z": np.array([[0, 1]])})
        merged = a.merged_with(b)
        assert merged.repetitions == 3
        np.testing.assert_array_equal(
            merged.measurements["z"], [[0, 0], [1, 1], [0, 1]]
        )

    def test_merge_rejects_key_mismatch(self):
        a = Result({"z": np.zeros((1, 1))})
        b = Result({"y": np.zeros((1, 1))})
        with pytest.raises(ValueError, match="Key mismatch"):
            a.merged_with(b)

    def test_json_roundtrip(self):
        original = Result(
            {
                "z": np.array([[0, 1], [1, 0]]),
                "mid": np.array([[1], [0]]),
            }
        )
        restored = Result.from_json(original.to_json())
        assert restored == original
        assert restored.measurements["z"].dtype == np.int8

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="serialized Result"):
            Result.from_json("{}")

    def test_histogram_after_merge(self):
        a = Result({"z": np.array([[0, 0]] * 3)})
        b = Result({"z": np.array([[1, 1]] * 2)})
        hist = a.merged_with(b).histogram("z")
        assert hist[0] == 3 and hist[3] == 2
