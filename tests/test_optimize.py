"""Tests for optimize_for_bgls (paper Sec. 3.2.2)."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import (
    Circuit,
    MatrixGate,
    drop_empty_moments,
    merge_single_qubit_gates,
    optimize_for_bgls,
)


def assert_same_unitary_up_to_phase(c1: Circuit, c2: Circuit, qubits):
    u1 = c1.unitary(qubit_order=qubits)
    u2 = c2.unitary(qubit_order=qubits)
    inner = np.vdot(u1.ravel(), u2.ravel())
    assert abs(inner) > 1e-9
    phase = inner / abs(inner)
    np.testing.assert_allclose(u1 * np.conj(phase), u2, atol=1e-8)


class TestMergeSingleQubitGates:
    def test_five_sequential_ops_merge_to_one(self):
        """The paper's illustrative example: 5 sequential 1q ops -> 1 op."""
        q = cirq.LineQubit(0)
        c = Circuit([cirq.H(q), cirq.T(q), cirq.S(q), cirq.X(q), cirq.H(q)])
        merged = optimize_for_bgls(c)
        assert merged.num_operations() == 1
        assert isinstance(next(merged.all_operations()).gate, MatrixGate)
        assert_same_unitary_up_to_phase(c, merged, [q])

    def test_multi_qubit_gates_break_runs(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(
            cirq.H(q[0]), cirq.T(q[0]),
            cirq.CNOT(q[0], q[1]),
            cirq.S(q[0]), cirq.X(q[0]),
        )
        merged = optimize_for_bgls(c)
        # two merged 1q ops + the CNOT
        assert merged.num_operations() == 3
        assert_same_unitary_up_to_phase(c, merged, q)

    def test_identity_runs_dropped(self):
        q = cirq.LineQubit(0)
        c = Circuit([cirq.X(q), cirq.X(q)])
        merged = optimize_for_bgls(c)
        assert merged.num_operations() == 0

    def test_measurements_preserved(self):
        q = cirq.LineQubit.range(2)
        c = Circuit(
            cirq.H(q[0]), cirq.S(q[0]), cirq.measure(*q, key="z")
        )
        merged = optimize_for_bgls(c)
        assert merged.has_measurements()
        assert merged.all_measurement_keys() == ["z"]
        # merged 1q run must come before the measurement
        ops = list(merged.all_operations())
        assert ops[-1].is_measurement

    def test_channels_break_runs_and_survive(self):
        q = cirq.LineQubit(0)
        c = Circuit(
            cirq.H(q), cirq.depolarize(0.1)(q), cirq.S(q), cirq.T(q)
        )
        merged = merge_single_qubit_gates(c)
        kinds = [type(op.gate).__name__ for op in merged.all_operations()]
        assert kinds[1] == "DepolarizingChannel"
        assert merged.num_operations() == 3

    def test_parameterized_ops_not_merged(self):
        q = cirq.LineQubit(0)
        c = Circuit(
            cirq.H(q), cirq.Rz(cirq.Symbol("t")).on(q), cirq.S(q)
        )
        merged = merge_single_qubit_gates(c)
        assert merged.num_operations() == 3

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuits_preserve_distribution(self, seed):
        qs = cirq.LineQubit.range(4)
        c = cirq.generate_random_circuit(qs, 20, random_state=seed)
        merged = optimize_for_bgls(c)
        assert merged.num_operations() <= c.num_operations()
        p1 = np.abs(c.final_state_vector(qubit_order=qs)) ** 2
        p2 = np.abs(merged.final_state_vector(qubit_order=qs)) ** 2
        np.testing.assert_allclose(p1, p2, atol=1e-8)

    def test_reduces_operation_count_on_dense_circuits(self):
        qs = cirq.LineQubit.range(8)
        c = cirq.generate_random_circuit(qs, 50, op_density=0.9, random_state=0)
        merged = optimize_for_bgls(c)
        assert merged.num_operations() < c.num_operations()


class TestDropEmptyMoments:
    def test_drops(self):
        q = cirq.LineQubit(0)
        c = Circuit()
        c.append_new_moment([cirq.H(q)])
        c.append_new_moment([])
        c.append_new_moment([cirq.X(q)])
        assert c.depth() == 3
        assert drop_empty_moments(c).depth() == 2
