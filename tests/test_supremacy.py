"""Tests for the random-circuit-sampling (supremacy) workload."""

import numpy as np

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.apps import random_supremacy_circuit, xeb_fidelity


class TestCircuitStructure:
    def test_grid_qubits(self):
        circuit = random_supremacy_circuit(2, 3, cycles=4, random_state=0)
        qubits = circuit.all_qubits()
        assert len(qubits) == 6
        assert all(isinstance(q, cirq.GridQubit) for q in qubits)

    def test_cycle_count_sets_depth(self):
        circuit = random_supremacy_circuit(
            2, 2, cycles=4, random_state=0, measure_key=None
        )
        # 4 cycles x (1q layer + entangler layer); some entangler patterns
        # may be empty on a 2x2 grid, so depth is between 4 and 8.
        assert 4 <= circuit.depth() <= 8

    def test_no_repeated_single_qubit_gate(self):
        circuit = random_supremacy_circuit(
            2, 2, cycles=10, random_state=1, measure_key=None
        )
        per_qubit = {}
        for moment in circuit.moments:
            for op in moment.operations:
                if len(op.qubits) == 1:
                    q = op.qubits[0]
                    assert per_qubit.get(q) != op.gate
                    per_qubit[q] = op.gate

    def test_entanglers_on_adjacent_qubits(self):
        circuit = random_supremacy_circuit(
            3, 3, cycles=8, random_state=2, measure_key=None
        )
        for op in circuit.all_operations():
            if len(op.qubits) == 2:
                assert op.qubits[0].is_adjacent(op.qubits[1])

    def test_reproducible(self):
        a = random_supremacy_circuit(2, 3, 6, random_state=5)
        b = random_supremacy_circuit(2, 3, 6, random_state=5)
        assert repr(a) == repr(b)

    def test_custom_entangler(self):
        circuit = random_supremacy_circuit(
            2, 2, 4, entangler=cirq.CZ, random_state=0, measure_key=None
        )
        two_q = {op.gate for op in circuit.all_operations() if len(op.qubits) == 2}
        assert two_q == {cirq.CZ}


class TestXEB:
    def test_bgls_samples_achieve_high_xeb(self):
        """BGLS samples from the true distribution: XEB near the ideal."""
        circuit = random_supremacy_circuit(
            2, 3, cycles=8, random_state=3, measure_key=None
        )
        qubits = circuit.all_qubits()
        ideal = np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        samples = sim.sample_bitstrings(circuit, repetitions=3000)
        ideal_xeb = float(2 ** len(qubits) * (ideal**2).sum() - 1.0)
        achieved = xeb_fidelity(samples, ideal)
        assert achieved > 0.5 * ideal_xeb
        assert achieved > 0.3  # scrambled circuits have ideal XEB ~ 1

    def test_uniform_sampler_scores_zero(self):
        circuit = random_supremacy_circuit(
            2, 3, cycles=8, random_state=4, measure_key=None
        )
        qubits = circuit.all_qubits()
        ideal = np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
        rng = np.random.default_rng(0)
        uniform = rng.integers(0, 2, size=(3000, len(qubits)))
        assert abs(xeb_fidelity(uniform, ideal)) < 0.15


class TestPulseSplits:
    def test_split_circuit_same_unitary(self):
        qubits = cirq.GridQubit.rect(2, 3)
        base = random_supremacy_circuit(
            2, 3, cycles=4, random_state=7, measure_key=None
        )
        split = random_supremacy_circuit(
            2, 3, cycles=4, random_state=7, measure_key=None, pulse_splits=4
        )
        np.testing.assert_allclose(
            base.final_state_vector(qubit_order=qubits),
            split.final_state_vector(qubit_order=qubits),
            atol=1e-8,
        )

    def test_split_multiplies_single_qubit_ops(self):
        base = random_supremacy_circuit(
            2, 2, cycles=5, random_state=3, measure_key=None
        )
        split = random_supremacy_circuit(
            2, 2, cycles=5, random_state=3, measure_key=None, pulse_splits=3
        )

        def count_1q(c):
            return sum(1 for op in c.all_operations() if len(op.qubits) == 1)

        assert count_1q(split) == 3 * count_1q(base)

    def test_merge_rotations_recovers_compact_form(self):
        from repro.transpile import MergeRotations, transpile

        split = random_supremacy_circuit(
            2, 2, cycles=5, random_state=3, measure_key=None, pulse_splits=3
        )
        base = random_supremacy_circuit(
            2, 2, cycles=5, random_state=3, measure_key=None
        )
        merged = transpile(split, [MergeRotations()])
        assert merged.num_operations() == base.num_operations()

    def test_invalid_pulse_splits_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="pulse_splits"):
            random_supremacy_circuit(2, 2, 4, pulse_splits=0)
