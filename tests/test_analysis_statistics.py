"""Tests for repro.analysis.statistics and repro.analysis.porter_thomas."""

import numpy as np
import pytest

from repro import analysis, apps
from repro.analysis import (
    bootstrap_confidence_interval,
    collision_probability,
    convergence_curve,
    empirical_distribution,
    expected_linear_xeb,
    porter_thomas_pdf,
    porter_thomas_test,
    pt_collision_ratio,
    pt_expected_entropy,
    shannon_entropy,
    standard_error_of_mean,
    wilson_interval,
)


class TestBootstrap:
    def _mean_metric(self, samples):
        return float(np.mean(samples[:, 0]))

    def test_interval_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 2, size=(500, 3))
        point, lo, hi = bootstrap_confidence_interval(
            samples, self._mean_metric, rng=1
        )
        assert lo <= point <= hi

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(2)
        small = rng.integers(0, 2, size=(50, 2))
        large = rng.integers(0, 2, size=(5000, 2))
        _, lo_s, hi_s = bootstrap_confidence_interval(
            small, self._mean_metric, rng=3
        )
        _, lo_l, hi_l = bootstrap_confidence_interval(
            large, self._mean_metric, rng=3
        )
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic_metric_gives_zero_width(self):
        samples = np.ones((100, 2), dtype=int)
        point, lo, hi = bootstrap_confidence_interval(
            samples, self._mean_metric, rng=4
        )
        assert point == lo == hi == 1.0

    def test_interval_covers_truth_mostly(self):
        rng = np.random.default_rng(5)
        covered = 0
        trials = 40
        for _ in range(trials):
            samples = (rng.random((200, 1)) < 0.3).astype(int)
            _, lo, hi = bootstrap_confidence_interval(
                samples,
                lambda s: float(np.mean(s)),
                n_resamples=120,
                rng=rng,
            )
            covered += lo <= 0.3 <= hi
        assert covered >= 0.8 * trials

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_confidence_interval(
                np.zeros((10, 1)), lambda s: 0.0, confidence=1.5
            )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="reps"):
            bootstrap_confidence_interval(np.zeros(10), lambda s: 0.0)


class TestConvergenceCurve:
    def test_overlap_improves_with_samples(self):
        # Bell-state sampling: overlap with the ideal 50/50 distribution.
        rng = np.random.default_rng(7)
        reps = 4000
        outcomes = rng.choice([0, 3], size=reps)
        samples = np.stack([(outcomes >> 1) & 1, outcomes & 1], axis=1)
        ideal = np.array([0.5, 0.0, 0.0, 0.5])

        def overlap(s):
            return analysis.fractional_overlap(
                empirical_distribution(s, 2), ideal
            )

        curve = convergence_curve(samples, overlap, [10, 100, reps])
        assert curve[-1] > 0.97
        assert curve[-1] >= curve[0] - 0.05

    def test_prefix_semantics(self):
        samples = np.array([[0], [1], [1], [1]])
        curve = convergence_curve(
            samples, lambda s: float(np.mean(s)), [1, 2, 4]
        )
        np.testing.assert_allclose(curve, [0.0, 0.5, 0.75])

    def test_rejects_out_of_range_count(self):
        with pytest.raises(ValueError, match="outside"):
            convergence_curve(np.zeros((5, 1)), lambda s: 0.0, [6])


class TestScalarStats:
    def test_sem_matches_formula(self):
        values = [1.0, 2.0, 3.0, 4.0]
        expected = np.std(values, ddof=1) / 2.0
        assert standard_error_of_mean(values) == pytest.approx(expected)

    def test_sem_needs_two_values(self):
        with pytest.raises(ValueError):
            standard_error_of_mean([1.0])

    def test_wilson_interval_contains_p_hat(self):
        lo, hi = wilson_interval(70, 100)
        assert lo < 0.7 < hi

    def test_wilson_interval_handles_extremes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and hi < 0.2
        lo, hi = wilson_interval(20, 20)
        assert lo > 0.8 and hi == 1.0

    def test_wilson_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)


class TestPorterThomas:
    def _random_circuit_probs(self, n=5, cycles=8, seed=0):
        circuit = apps.random_supremacy_circuit(
            1, n, cycles, random_state=seed, measure_key=None
        )
        psi = circuit.final_state_vector()
        return np.abs(psi) ** 2

    def test_deep_random_circuit_is_pt(self):
        probs = self._random_circuit_probs(n=5, cycles=12, seed=1)
        _, p_value = porter_thomas_test(probs)
        assert p_value > 0.01

    def test_uniform_distribution_is_not_pt(self):
        probs = np.full(64, 1 / 64)
        statistic, p_value = porter_thomas_test(probs)
        assert p_value < 1e-6

    def test_pdf_integrates_to_one(self):
        dim = 32
        p = np.linspace(0, 1, 200001)
        mass = np.trapezoid(porter_thomas_pdf(p, dim), p)
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_collision_probability_uniform(self):
        probs = np.full(16, 1 / 16)
        assert collision_probability(probs) == pytest.approx(1 / 16)
        assert pt_collision_ratio(probs) == pytest.approx(1.0)

    def test_collision_ratio_pt_is_two(self):
        probs = self._random_circuit_probs(n=6, cycles=12, seed=3)
        assert 1.7 < pt_collision_ratio(probs) < 2.3

    def test_expected_xeb_limits(self):
        uniform = np.full(64, 1 / 64)
        assert expected_linear_xeb(uniform) == pytest.approx(0.0)
        pt = self._random_circuit_probs(n=6, cycles=12, seed=4)
        assert 0.7 < expected_linear_xeb(pt) < 1.3

    def test_entropy_limits(self):
        uniform = np.full(32, 1 / 32)
        assert shannon_entropy(uniform) == pytest.approx(5.0)
        delta = np.zeros(32)
        delta[3] = 1.0
        assert shannon_entropy(delta) == 0.0

    def test_pt_entropy_below_uniform(self):
        assert pt_expected_entropy(2**8) < 8.0
        probs = self._random_circuit_probs(n=6, cycles=12, seed=5)
        assert shannon_entropy(probs) == pytest.approx(
            pt_expected_entropy(2**6), abs=0.4
        )

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="renormalize"):
            porter_thomas_test(np.full(8, 0.2))

    def test_renormalize_accepts_empirical_estimate(self):
        # A scaled distribution must give the identical test result once
        # renormalized — the KS statistic only sees N*p.
        probs = self._random_circuit_probs(n=5, cycles=12, seed=7)
        exact = porter_thomas_test(probs)
        scaled = porter_thomas_test(1000.0 * probs, renormalize=True)
        assert scaled == pytest.approx(exact)

    def test_renormalize_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="total mass"):
            porter_thomas_test(np.zeros(8), renormalize=True)

    def test_rejects_negative_probabilities(self):
        probs = np.full(8, 1 / 8)
        probs[0] = -probs[0]
        with pytest.raises(ValueError, match="non-negative"):
            porter_thomas_test(probs, renormalize=True)

    def test_atol_widens_exact_contract(self):
        probs = np.full(8, 1 / 8) * 1.001
        with pytest.raises(ValueError, match="renormalize"):
            porter_thomas_test(probs)
        statistic, p_value = porter_thomas_test(probs, atol=0.01)
        assert 0.0 <= statistic <= 1.0
