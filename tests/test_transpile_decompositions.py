"""Unitary-equivalence tests for every decomposition in repro.transpile."""

import cmath

import numpy as np
import pytest
import scipy.stats

from repro import circuits as cirq
from repro.protocols import unitary
from repro.transpile import (
    decompose_ccz,
    decompose_cswap,
    decompose_iswap,
    decompose_single_qubit,
    decompose_swap,
    decompose_toffoli,
    multiplexed_rotation,
    multiplexed_rotation_matrix,
    quantum_shannon_decompose,
    shannon_circuit,
    t_count,
    zyz_angles,
    zyz_matrix,
)


def random_unitary(dim, seed):
    return scipy.stats.unitary_group.rvs(dim, random_state=seed)


def ops_unitary(ops, qubits):
    """Composite unitary of an op list over an explicit qubit order."""
    circuit = cirq.Circuit()
    circuit.append(ops)
    return circuit.unitary(qubit_order=qubits)


def assert_equal_up_to_phase(a, b, atol=1e-7):
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    phase = a[index] / b[index]
    assert abs(abs(phase) - 1.0) < atol
    np.testing.assert_allclose(a, phase * b, atol=atol)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_unitary_roundtrip(self, seed):
        u = random_unitary(2, seed)
        np.testing.assert_allclose(zyz_matrix(*zyz_angles(u)), u, atol=1e-9)

    @pytest.mark.parametrize(
        "gate", [cirq.X, cirq.Y, cirq.Z, cirq.H, cirq.S, cirq.T]
    )
    def test_named_gates_roundtrip(self, gate):
        u = unitary(gate)
        np.testing.assert_allclose(zyz_matrix(*zyz_angles(u)), u, atol=1e-9)

    def test_identity_gives_zero_angles(self):
        alpha, beta, gamma, delta = zyz_angles(np.eye(2))
        assert alpha == beta == gamma == delta == 0.0

    def test_antidiagonal_branch(self):
        u = np.array([[0, 1], [1, 0]], dtype=complex)  # X
        np.testing.assert_allclose(zyz_matrix(*zyz_angles(u)), u, atol=1e-9)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="not unitary"):
            zyz_angles(np.array([[1, 1], [0, 1]], dtype=complex))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="2x2"):
            zyz_angles(np.eye(4))

    @pytest.mark.parametrize("seed", range(10))
    def test_decompose_single_qubit_ops(self, seed):
        u = random_unitary(2, seed + 100)
        q = cirq.LineQubit(0)
        alpha, ops = decompose_single_qubit(u, q)
        got = ops_unitary(ops, [q]) if ops else np.eye(2)
        np.testing.assert_allclose(cmath.exp(1j * alpha) * got, u, atol=1e-8)

    def test_z_like_input_yields_single_op(self):
        q = cirq.LineQubit(0)
        _, ops = decompose_single_qubit(unitary(cirq.T), q)
        assert len(ops) == 1


class TestMultiplexor:
    @pytest.mark.parametrize("axis", ["y", "z"])
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_matches_reference_matrix(self, axis, k):
        rng = np.random.default_rng(17 * k + ord(axis))
        angles = rng.uniform(-np.pi, np.pi, size=2**k)
        qubits = cirq.LineQubit.range(k + 1)
        target, controls = qubits[0], qubits[1:]
        ops = multiplexed_rotation(axis, angles, controls, target)
        got = ops_unitary(ops, qubits)
        want = multiplexed_rotation_matrix(axis, angles)
        np.testing.assert_allclose(got, want, atol=1e-8)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError, match="axis"):
            multiplexed_rotation("x", [0.1], [], cirq.LineQubit(0))

    def test_rejects_wrong_angle_count(self):
        qs = cirq.LineQubit.range(2)
        with pytest.raises(ValueError, match="angles"):
            multiplexed_rotation("y", [0.1], [qs[1]], qs[0])

    def test_emits_expected_op_count(self):
        qs = cirq.LineQubit.range(3)
        ops = multiplexed_rotation("z", [0.1, 0.2, 0.3, 0.4], qs[1:], qs[0])
        rotations = [op for op in ops if len(op.qubits) == 1]
        cnots = [op for op in ops if len(op.qubits) == 2]
        assert len(rotations) == 4
        # The plain recursion emits 2^(k+1) - 2 CNOTs (no cancellation pass).
        assert len(cnots) == 6


class TestQuantumShannon:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_unitaries_exact_with_phase(self, n, seed):
        u = random_unitary(2**n, 31 * n + seed)
        qubits = cirq.LineQubit.range(n)
        alpha, ops = quantum_shannon_decompose(u, qubits)
        got = ops_unitary(ops, qubits)
        np.testing.assert_allclose(cmath.exp(1j * alpha) * got, u, atol=1e-7)

    def test_four_qubit_unitary(self):
        u = random_unitary(16, 999)
        qubits = cirq.LineQubit.range(4)
        circuit = shannon_circuit(u, qubits)
        got = circuit.unitary(qubit_order=qubits)
        assert_equal_up_to_phase(u, got)

    def test_gate_set_is_rz_ry_cnot(self):
        u = random_unitary(8, 5)
        qubits = cirq.LineQubit.range(3)
        _, ops = quantum_shannon_decompose(u, qubits)
        for op in ops:
            if len(op.qubits) == 2:
                assert isinstance(op.gate, cirq.CXPowGate)
            else:
                assert isinstance(op.gate, (cirq.ZPowGate, cirq.YPowGate))

    def test_cnot_itself_decomposes(self):
        qubits = cirq.LineQubit.range(2)
        u = unitary(cirq.CNOT)
        alpha, ops = quantum_shannon_decompose(u, qubits)
        got = ops_unitary(ops, qubits) if ops else np.eye(4)
        np.testing.assert_allclose(cmath.exp(1j * alpha) * got, u, atol=1e-7)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="not unitary"):
            quantum_shannon_decompose(np.ones((2, 2)), cirq.LineQubit.range(1))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            quantum_shannon_decompose(np.eye(4), cirq.LineQubit.range(1))


class TestCliffordTIdentities:
    def test_toffoli_exact(self):
        qs = cirq.LineQubit.range(3)
        got = ops_unitary(decompose_toffoli(*qs), qs)
        np.testing.assert_allclose(got, unitary(cirq.TOFFOLI), atol=1e-8)

    def test_ccz_exact(self):
        qs = cirq.LineQubit.range(3)
        got = ops_unitary(decompose_ccz(*qs), qs)
        np.testing.assert_allclose(got, unitary(cirq.CCZ), atol=1e-8)

    def test_cswap_exact(self):
        qs = cirq.LineQubit.range(3)
        got = ops_unitary(decompose_cswap(*qs), qs)
        np.testing.assert_allclose(got, unitary(cirq.CSWAP), atol=1e-8)

    def test_swap_exact(self):
        qs = cirq.LineQubit.range(2)
        got = ops_unitary(decompose_swap(*qs), qs)
        np.testing.assert_allclose(got, unitary(cirq.SWAP), atol=1e-8)

    def test_iswap_exact(self):
        qs = cirq.LineQubit.range(2)
        got = ops_unitary(decompose_iswap(*qs), qs)
        np.testing.assert_allclose(got, unitary(cirq.ISWAP), atol=1e-8)

    def test_toffoli_t_count_is_seven(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit()
        circuit.append(decompose_toffoli(*qs))
        assert t_count(circuit) == 7

    def test_t_count_counts_t_dagger(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(cirq.T.on(q), cirq.T_DAG.on(q), cirq.S.on(q))
        assert t_count(circuit) == 2

    def test_t_count_ignores_parameterized(self):
        q = cirq.LineQubit(0)
        theta = cirq.Symbol("t")
        circuit = cirq.Circuit(cirq.ZPowGate(exponent=theta).on(q))
        assert t_count(circuit) == 0
