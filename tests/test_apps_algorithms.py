"""Tests for the algorithm applications: QFT/QPE, Grover, BV, VQE, QV,
teleportation."""

import math

import numpy as np
import pytest

from repro import apps, born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import StateVectorSimulationState


def make_sampler(qubits, seed=0):
    return Simulator(
        initial_state=StateVectorSimulationState(qubits),
        apply_op=lambda op, s: act_on(op, s),
        compute_probability=born.compute_probability_state_vector,
        seed=seed,
    )


def sampler_fn(qubits, seed=0):
    def run(circuit, repetitions):
        return make_sampler(qubits, seed).sample_bitstrings(
            circuit, repetitions=repetitions
        )

    return run


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        qs = cirq.LineQubit.range(n)
        u = apps.qft_circuit(qs).unitary(qubit_order=qs)
        np.testing.assert_allclose(u, apps.qft_matrix(n), atol=1e-8)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_inverse_composes_to_identity(self, n):
        qs = cirq.LineQubit.range(n)
        u = apps.qft_circuit(qs).unitary(qubit_order=qs)
        ui = apps.qft_circuit(qs, inverse=True).unitary(qubit_order=qs)
        np.testing.assert_allclose(ui @ u, np.eye(2**n), atol=1e-8)

    def test_without_swaps_is_bit_reversed(self):
        n = 3
        qs = cirq.LineQubit.range(n)
        u = apps.qft_circuit(qs, final_swaps=False).unitary(qubit_order=qs)
        full = apps.qft_matrix(n)
        # Bit-reversal permutation of the rows recovers the QFT.
        perm = [int(f"{i:03b}"[::-1], 2) for i in range(2**n)]
        np.testing.assert_allclose(u[perm, :], full, atol=1e-8)

    def test_qft_on_basis_state_is_uniform(self):
        qs = cirq.LineQubit.range(3)
        circuit = apps.qft_circuit(qs, measure_key="z")
        res = make_sampler(qs).run(circuit, repetitions=400)
        rows = {tuple(r) for r in res.measurements["z"]}
        assert len(rows) > 4  # uniform over 8 outcomes

    def test_rejects_empty_register(self):
        with pytest.raises(ValueError):
            apps.qft_circuit([])


class TestPhaseEstimation:
    @pytest.mark.parametrize("phi_bits", [(0, 0, 1), (0, 1, 0), (1, 0, 1)])
    def test_exactly_representable_phase(self, phi_bits):
        phi = apps.phase_from_bits(phi_bits)
        u = np.diag([1.0, np.exp(2j * math.pi * phi)])
        n = len(phi_bits)
        circuit, phase_qubits, targets = apps.phase_estimation_circuit(
            u, n, target_preparation=[cirq.X.on(cirq.LineQubit(n))]
        )
        all_qubits = phase_qubits + targets
        res = make_sampler(all_qubits, seed=1).run(circuit, repetitions=50)
        estimate = apps.estimate_phase(res.measurements["phase"])
        assert estimate == pytest.approx(phi)

    def test_non_representable_phase_concentrates(self):
        phi = 0.3
        u = np.diag([1.0, np.exp(2j * math.pi * phi)])
        n = 4
        circuit, phase_qubits, targets = apps.phase_estimation_circuit(
            u, n, target_preparation=[cirq.X.on(cirq.LineQubit(n))]
        )
        res = make_sampler(phase_qubits + targets, seed=2).run(
            circuit, repetitions=200
        )
        estimate = apps.estimate_phase(res.measurements["phase"])
        assert abs(estimate - phi) < 1.0 / 2**n

    def test_eigenstate_zero_gives_zero_phase(self):
        u = np.diag([1.0, np.exp(1j)])
        circuit, pq, tq = apps.phase_estimation_circuit(u, 3)
        res = make_sampler(pq + tq, seed=3).run(circuit, repetitions=20)
        assert apps.estimate_phase(res.measurements["phase"]) == 0.0

    def test_rejects_multi_qubit_unitary(self):
        with pytest.raises(ValueError, match="1-qubit"):
            apps.phase_estimation_circuit(np.eye(4), 3)

    def test_phase_from_bits(self):
        assert apps.phase_from_bits([1, 0, 1]) == pytest.approx(0.625)
        assert apps.phase_from_bits([0, 0, 0]) == 0.0


class TestGrover:
    def test_single_marked_state_found(self):
        n, marked = 4, [0b1011]
        qs = cirq.LineQubit.range(n)
        circuit = apps.grover_circuit(n, marked)
        bits = make_sampler(qs, seed=0).sample_bitstrings(
            circuit, repetitions=100
        )
        assert apps.success_probability(bits, marked) > 0.9

    def test_marked_as_bit_tuple(self):
        n = 3
        circuit = apps.grover_circuit(n, [(1, 0, 1)])
        qs = cirq.LineQubit.range(n)
        bits = make_sampler(qs, seed=1).sample_bitstrings(circuit, repetitions=60)
        assert apps.success_probability(bits, [0b101]) > 0.8

    def test_multiple_marked_states(self):
        n, marked = 4, [3, 12]
        qs = cirq.LineQubit.range(n)
        circuit = apps.grover_circuit(n, marked)
        bits = make_sampler(qs, seed=2).sample_bitstrings(circuit, repetitions=100)
        assert apps.success_probability(bits, marked) > 0.85

    def test_optimal_iterations_formula(self):
        assert apps.optimal_iterations(4, 1) == 3
        assert apps.optimal_iterations(10, 1) == 25

    def test_oracle_is_diagonal_sign_flip(self):
        gate = apps.oracle_gate([2], 2)
        u = gate._unitary_()
        np.testing.assert_allclose(np.diag(u), [1, 1, -1, 1])

    def test_diffusion_reflects_uniform(self):
        gate = apps.diffusion_gate(2)
        u = gate._unitary_()
        s = np.full(4, 0.5)
        np.testing.assert_allclose(u @ s, s, atol=1e-12)

    def test_rejects_empty_marked(self):
        with pytest.raises(ValueError, match="at least one"):
            apps.grover_circuit(3, [])

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="out of range"):
            apps.grover_circuit(2, [7])

    def test_rejects_wrong_length_bitstring(self):
        with pytest.raises(ValueError, match="wrong length"):
            apps.grover_circuit(3, [(0, 1)])


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["1", "101", "1101", "00110"])
    def test_recovers_secret_deterministically(self, secret):
        circuit = apps.bernstein_vazirani_circuit(secret)
        qs = cirq.LineQubit.range(len(secret) + 1)
        res = make_sampler(qs, seed=4).run(circuit, repetitions=20)
        recovered = apps.recover_secret(res.measurements["secret"])
        assert recovered == apps.parse_secret(secret)

    def test_accepts_bit_sequence(self):
        assert apps.parse_secret([1, 0, 1]) == (1, 0, 1)

    def test_rejects_bad_string(self):
        with pytest.raises(ValueError):
            apps.parse_secret("10a")
        with pytest.raises(ValueError):
            apps.parse_secret("")

    def test_recover_secret_detects_inconsistency(self):
        with pytest.raises(ValueError, match="disagree"):
            apps.recover_secret(np.array([[0, 1], [1, 1]]))

    def test_circuit_is_clifford(self):
        circuit = apps.bernstein_vazirani_circuit("1011")
        for op in circuit.all_operations():
            if not op.is_measurement:
                assert op._stabilizer_sequence_() is not None


class TestVQE:
    def test_exact_ground_energy_two_sites(self):
        # H = -J Z0 Z1 - h (X0 + X1); for J=h=1 ground energy = -sqrt(1+4)...
        # verified against dense diagonalization by construction; sanity:
        problem = apps.TFIMProblem(num_sites=2, coupling=1.0, field=1.0)
        e = apps.exact_ground_energy(problem)
        assert e == pytest.approx(-np.sqrt(5.0), abs=1e-9)

    def test_hamiltonian_is_hermitian(self):
        problem = apps.TFIMProblem(num_sites=3)
        ham = apps.tfim_hamiltonian_matrix(problem)
        np.testing.assert_allclose(ham, ham.conj().T, atol=1e-12)

    def test_optimizer_approaches_ground_state(self):
        problem = apps.TFIMProblem(num_sites=3, coupling=1.0, field=0.8)
        result = apps.optimize_tfim(problem, layers=2, grid_size=6, refinements=2)
        assert result.best_energy >= result.exact_energy - 1e-9
        assert result.relative_error < 0.05

    def test_sampled_energy_close_to_exact(self):
        problem = apps.TFIMProblem(num_sites=3)
        qs = cirq.LineQubit.range(3)
        result = apps.optimize_tfim(
            problem,
            layers=1,
            grid_size=5,
            refinements=1,
            sampler=sampler_fn(qs, seed=5),
            repetitions=2000,
        )
        exact_at_params = apps.exact_energy_of_parameters(
            problem, result.best_params, layers=1
        )
        assert abs(result.best_energy - exact_at_params) < 0.25

    def test_simulator_accepted_as_sampler(self):
        problem = apps.TFIMProblem(num_sites=3)
        qs = cirq.LineQubit.range(3)
        sim = Simulator(
            StateVectorSimulationState(qs),
            act_on,
            born.compute_probability_state_vector,
            seed=5,
        )
        result = apps.optimize_tfim(
            problem, layers=1, grid_size=5, refinements=1,
            sampler=sim, repetitions=2000,
        )
        exact_at_params = apps.exact_energy_of_parameters(
            problem, result.best_params, layers=1
        )
        assert abs(result.best_energy - exact_at_params) < 0.25

    def test_rejects_single_site(self):
        with pytest.raises(ValueError):
            apps.TFIMProblem(num_sites=1)

    def test_rejects_wrong_parameter_count(self):
        problem = apps.TFIMProblem(num_sites=2)
        with pytest.raises(ValueError, match="parameters"):
            apps.exact_energy_of_parameters(problem, [0.1], layers=1)


class TestQuantumVolume:
    def test_heavy_set_is_about_half(self):
        circuit = apps.quantum_volume_circuit(3, random_state=0)
        heavy = apps.heavy_set(circuit)
        assert 1 <= len(heavy) <= 7

    def test_ideal_sampler_beats_threshold(self):
        qs = cirq.LineQubit.range(3)
        result = apps.run_quantum_volume(
            3,
            sampler_fn(qs, seed=6),
            num_circuits=4,
            repetitions=150,
            random_state=1,
        )
        assert result.passed
        assert result.log2_quantum_volume == 3
        # Ideal asymptotic HOP ~ 0.85; allow wide statistical slack.
        assert 0.7 < result.mean_hop <= 1.0

    def test_uniform_sampler_fails(self):
        rng = np.random.default_rng(0)

        def uniform_sampler(circuit, repetitions):
            n = len(circuit.all_qubits())
            return rng.integers(0, 2, size=(repetitions, n))

        result = apps.run_quantum_volume(
            3, uniform_sampler, num_circuits=4, repetitions=200, random_state=2
        )
        assert 0.35 < result.mean_hop < 0.65
        assert not result.passed

    def test_rejects_tiny_m(self):
        with pytest.raises(ValueError):
            apps.quantum_volume_circuit(1)


class TestTeleportation:
    def test_default_message_teleports_exactly(self):
        circuit = apps.teleportation_circuit()
        qs = cirq.LineQubit.range(3)
        res = make_sampler(qs, seed=7).run(circuit, repetitions=200)
        assert apps.teleportation_fidelity(res) == 1.0

    def test_bell_outcomes_uniform(self):
        circuit = apps.teleportation_circuit()
        qs = cirq.LineQubit.range(3)
        res = make_sampler(qs, seed=8).run(circuit, repetitions=2000)
        dist = apps.bell_measurement_distribution(res)
        np.testing.assert_allclose(dist, 0.25, atol=0.05)

    def test_custom_message(self):
        u = np.array([[0, 1], [1, 0]], dtype=complex)  # message = |1>
        circuit = apps.teleportation_circuit(message_preparation=u)
        qs = cirq.LineQubit.range(3)
        res = make_sampler(qs, seed=9).run(circuit, repetitions=100)
        assert apps.teleportation_fidelity(res) == 1.0

    def test_without_verification_has_no_verify_key(self):
        circuit = apps.teleportation_circuit(verify=False)
        assert "verify" not in circuit.all_measurement_keys()
        assert {"m0", "m1"} <= set(circuit.all_measurement_keys())
