"""Tests for GateOperation behaviour and protocol forwarding."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import GateOperation, ParamResolver, Symbol


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


class TestConstruction:
    def test_arity_checked(self, qubits):
        with pytest.raises(ValueError, match="acts on"):
            GateOperation(cirq.CNOT, (qubits[0],))

    def test_duplicates_rejected(self, qubits):
        with pytest.raises(ValueError, match="Duplicate"):
            GateOperation(cirq.CNOT, (qubits[0], qubits[0]))

    def test_qubits_stored_in_given_order(self, qubits):
        op = cirq.CNOT(qubits[2], qubits[0])
        assert op.qubits == (qubits[2], qubits[0])


class TestProtocolForwarding:
    def test_unitary(self, qubits):
        op = cirq.H(qubits[0])
        np.testing.assert_allclose(op._unitary_(), cirq.H._unitary_())

    def test_kraus(self, qubits):
        op = cirq.bit_flip(0.5)(qubits[0])
        assert len(op._kraus_()) == 2

    def test_stabilizer_sequence(self, qubits):
        op = cirq.S(qubits[0])
        assert op._stabilizer_sequence_() is not None
        op_t = cirq.T(qubits[0])
        assert op_t._stabilizer_sequence_() is None

    def test_parameter_resolution(self, qubits):
        op = cirq.Rz(Symbol("t")).on(qubits[0])
        assert op._is_parameterized_()
        resolved = op._resolve_parameters_(ParamResolver({"t": 0.5}))
        assert not resolved._is_parameterized_()
        assert resolved.qubits == op.qubits


class TestMeasurementProperties:
    def test_is_measurement(self, qubits):
        assert cirq.measure(qubits[0], key="m").is_measurement
        assert not cirq.H(qubits[0]).is_measurement

    def test_measurement_key(self, qubits):
        assert cirq.measure(qubits[0], key="m").measurement_key == "m"
        assert cirq.H(qubits[0]).measurement_key is None


class TestWithQubits:
    def test_remaps(self, qubits):
        op = cirq.CNOT(qubits[0], qubits[1])
        moved = op.with_qubits(qubits[1], qubits[2])
        assert moved.qubits == (qubits[1], qubits[2])
        assert moved.gate == op.gate

    def test_arity_still_checked(self, qubits):
        op = cirq.H(qubits[0])
        with pytest.raises(ValueError):
            op.with_qubits(qubits[0], qubits[1])


class TestEqualityAndRepr:
    def test_equality(self, qubits):
        assert cirq.H(qubits[0]) == cirq.H(qubits[0])
        assert cirq.H(qubits[0]) != cirq.H(qubits[1])
        assert cirq.H(qubits[0]) != cirq.X(qubits[0])

    def test_hashable(self, qubits):
        assert len({cirq.H(qubits[0]), cirq.H(qubits[0])}) == 1

    def test_repr_contains_qubits(self, qubits):
        assert "LineQubit(0)" in repr(cirq.H(qubits[0]))
