"""Tests for the mini tensor-network engine."""

import numpy as np
import pytest

from repro.tensornet import Tensor, TensorNetwork, contract_pair


class TestTensor:
    def test_construction_validates_rank(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), ("a",))

    def test_duplicate_index_names_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), ("a", "a"))

    def test_isel(self):
        t = Tensor(np.arange(6).reshape(2, 3), ("a", "b"))
        s = t.isel({"a": 1})
        assert s.inds == ("b",)
        np.testing.assert_array_equal(s.data, [3, 4, 5])

    def test_isel_multiple(self):
        t = Tensor(np.arange(8).reshape(2, 2, 2), ("a", "b", "c"))
        s = t.isel({"a": 1, "c": 0})
        assert s.inds == ("b",)
        np.testing.assert_array_equal(s.data, [4, 6])

    def test_isel_unknown_index(self):
        t = Tensor(np.zeros(2), ("a",))
        with pytest.raises(KeyError):
            t.isel({"zz": 0})

    def test_isel_out_of_range(self):
        t = Tensor(np.zeros(2), ("a",))
        with pytest.raises(IndexError):
            t.isel({"a": 5})

    def test_reindex(self):
        t = Tensor(np.zeros((2, 3)), ("a", "b")).reindex({"a": "x"})
        assert t.inds == ("x", "b")

    def test_transpose_to(self):
        t = Tensor(np.arange(6).reshape(2, 3), ("a", "b"))
        s = t.transpose_to(("b", "a"))
        assert s.shape == (3, 2)
        np.testing.assert_array_equal(s.data, t.data.T)

    def test_transpose_to_invalid(self):
        t = Tensor(np.zeros((2, 3)), ("a", "b"))
        with pytest.raises(ValueError):
            t.transpose_to(("a", "zz"))

    def test_conj_with_suffix(self):
        t = Tensor(np.array([1j, 2]), ("a",)).conj("*")
        assert t.inds == ("a*",)
        np.testing.assert_array_equal(t.data, [-1j, 2])

    def test_fuse(self):
        t = Tensor(np.arange(8).reshape(2, 2, 2), ("a", "b", "c"))
        m = t.fuse([["a", "b"], ["c"]])
        assert m.shape == (4, 2)

    def test_ind_size(self):
        t = Tensor(np.zeros((2, 5)), ("a", "b"))
        assert t.ind_size("b") == 5


class TestContractPair:
    def test_matrix_vector(self):
        m = Tensor(np.array([[1, 2], [3, 4]]), ("i", "j"))
        v = Tensor(np.array([1, 1]), ("j",))
        out = contract_pair(m, v)
        assert out.inds == ("i",)
        np.testing.assert_array_equal(out.data, [3, 7])

    def test_outer_product(self):
        a = Tensor(np.array([1, 2]), ("i",))
        b = Tensor(np.array([3, 4]), ("j",))
        out = contract_pair(a, b)
        assert set(out.inds) == {"i", "j"}
        np.testing.assert_array_equal(out.data, [[3, 4], [6, 8]])

    def test_multiple_shared_indices(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.random((2, 3, 4)), ("i", "j", "k"))
        b = Tensor(rng.random((3, 4, 5)), ("j", "k", "l"))
        out = contract_pair(a, b)
        expected = np.einsum("ijk,jkl->il", a.data, b.data)
        np.testing.assert_allclose(out.data, expected)


class TestTensorNetwork:
    def test_index_appearing_three_times_rejected(self):
        t = Tensor(np.zeros(2), ("a",))
        with pytest.raises(ValueError, match="more than twice"):
            TensorNetwork([t, t, t])

    def test_free_indices(self):
        a = Tensor(np.zeros((2, 3)), ("i", "j"))
        b = Tensor(np.zeros((3, 4)), ("j", "k"))
        tn = TensorNetwork([a, b])
        assert set(tn.free_indices()) == {"i", "k"}

    def test_scalar_contraction(self):
        a = Tensor(np.array([1.0, 2.0]), ("i",))
        b = Tensor(np.array([3.0, 4.0]), ("i",))
        assert TensorNetwork([a, b]).contract() == pytest.approx(11.0)

    def test_contract_with_output_order(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.random((2, 3)), ("i", "j"))
        b = Tensor(rng.random((3, 4)), ("j", "k"))
        out = TensorNetwork([a, b]).contract(output_inds=["k", "i"])
        expected = np.einsum("ij,jk->ki", a.data, b.data)
        np.testing.assert_allclose(out.data, expected)

    def test_chain_contraction_matches_einsum(self):
        rng = np.random.default_rng(2)
        t1 = Tensor(rng.random((2, 3)), ("a", "x"))
        t2 = Tensor(rng.random((3, 2, 4)), ("x", "b", "y"))
        t3 = Tensor(rng.random((4, 2)), ("y", "c"))
        out = TensorNetwork([t1, t2, t3]).contract(output_inds=["a", "b", "c"])
        expected = np.einsum("ax,xby,yc->abc", t1.data, t2.data, t3.data)
        np.testing.assert_allclose(out.data, expected)

    def test_disconnected_network_outer_product(self):
        a = Tensor(np.array([1.0, 2.0]), ("i",))
        b = Tensor(np.array([3.0, 4.0]), ("j",))
        out = TensorNetwork([a, b]).contract(output_inds=["i", "j"])
        np.testing.assert_allclose(out.data, [[3, 4], [6, 8]])

    def test_empty_network_raises(self):
        with pytest.raises(ValueError):
            TensorNetwork([]).contract()

    def test_norm_squared_product_state(self):
        a = Tensor(np.array([0.6, 0.8]), ("i0",))
        b = Tensor(np.array([1.0, 0.0]), ("i1",))
        assert TensorNetwork([a, b]).norm_squared() == pytest.approx(1.0)

    def test_norm_squared_with_bonds(self):
        # Bell-like pair: psi_{ij} = delta_{ij}/sqrt(2) via a bond.
        data = np.zeros((2, 2))
        data[0, 0] = data[1, 1] = 2 ** -0.25
        a = Tensor(data, ("i0", "bond"))
        b = Tensor(data, ("bond", "i1"))
        assert TensorNetwork([a, b]).norm_squared() == pytest.approx(1.0)

    def test_norm_squared_complex(self):
        a = Tensor(np.array([1j / np.sqrt(2), 1 / np.sqrt(2)]), ("i0",))
        assert TensorNetwork([a]).norm_squared() == pytest.approx(1.0)
