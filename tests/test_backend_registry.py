"""Tests for the backend capability registry (states/registry.py)."""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.protocols import act_on
from repro.sampler.plan import compile_plan
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)
from repro.states.registry import (
    capabilities_for,
    capabilities_for_probability_fn,
    register_backend,
    registered_backends,
    unregister_backend,
)


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


class TestShippedRegistrations:
    def test_all_five_backends_registered(self):
        names = {caps.name for caps in registered_backends()}
        assert {
            "state_vector",
            "density_matrix",
            "stabilizer_ch_form",
            "clifford_tableau",
            "mps",
        } <= names

    @pytest.mark.parametrize(
        "cls,stab_seq,fused,base_unitary,renorm,exact_ch",
        [
            (StateVectorSimulationState, False, False, True, True, False),
            (DensityMatrixSimulationState, False, False, True, False, True),
            (StabilizerChFormSimulationState, True, True, False, False, False),
            (CliffordTableauSimulationState, True, True, False, False, False),
            (MPSState, False, False, True, True, False),
        ],
    )
    def test_capability_flags(
        self, cls, stab_seq, fused, base_unitary, renorm, exact_ch
    ):
        caps = capabilities_for(cls)
        assert caps.stabilizer_sequences == stab_seq
        assert caps.fused_moments == fused
        assert caps.base_unitary_dispatch == base_unitary
        assert caps.renormalize == renorm
        assert caps.exact_channels == exact_ch
        assert caps.candidates is not None
        assert caps.candidates_many is not None

    def test_instance_and_type_resolve_identically(self, qubits):
        state = StateVectorSimulationState(qubits)
        assert capabilities_for(state) is capabilities_for(
            StateVectorSimulationState
        )

    def test_scalar_function_lookup_matches_born(self):
        caps = capabilities_for_probability_fn(
            born.compute_probability_state_vector
        )
        assert caps is capabilities_for(StateVectorSimulationState)
        assert caps.candidates is born.candidates_state_vector
        assert caps.candidates_many is born.candidates_state_vector_many

    def test_mps_alias_resolves_to_same_descriptor(self):
        assert capabilities_for_probability_fn(
            born.mps_bitstring_probability
        ) is capabilities_for(MPSState)

    def test_unknown_function_resolves_to_none(self):
        assert capabilities_for_probability_fn(lambda s, b: 0.0) is None


class TestDerivedCapabilities:
    def test_subclass_inherits_parent_registration(self, qubits):
        class Child(StateVectorSimulationState):
            pass

        assert capabilities_for(Child) is capabilities_for(
            StateVectorSimulationState
        )

    def test_unregistered_state_is_introspected_once(self):
        class Bare:
            def candidate_probabilities(self, bits, support):
                return np.ones(2)

        caps = capabilities_for(Bare)
        assert caps.candidates is not None
        assert caps.candidates_many is None
        assert not caps.stabilizer_sequences
        assert not caps.base_unitary_dispatch  # no SimulationState._act_on_
        # Cached: second lookup returns the identical derived descriptor.
        assert capabilities_for(Bare) is caps

    def test_act_on_override_disables_fast_unitary(self, qubits):
        """Regression: a subclass of a registered backend overriding
        _act_on_ must not be fast-pathed around its own dispatch."""
        calls = []

        class Intercepting(StateVectorSimulationState):
            def _act_on_(self, op):
                calls.append(op)
                super()._act_on_(op)

        caps = capabilities_for(Intercepting)
        assert not caps.base_unitary_dispatch
        # Oracle functions still inherit from the parent registration.
        assert caps.candidates is born.candidates_state_vector
        assert capabilities_for(Intercepting) is caps  # cached copy
        circuit = cirq.Circuit(
            cirq.H(qubits[0]), cirq.CNOT(qubits[0], qubits[1])
        )
        plan = compile_plan(circuit, Intercepting(qubits), act_on)
        assert not plan.fast_unitary
        state = Intercepting(qubits)
        for rec in plan.records:
            plan.apply(rec, state, act_on)
        assert len(calls) == 2  # every op went through the override

    def test_act_on_override_runs_end_to_end(self, qubits):
        """copy() preserves the subclass, so the override sees every op
        of an actual Simulator.run, not just the template state."""
        calls = []

        class Logging(StateVectorSimulationState):
            def _act_on_(self, op):
                calls.append(op)
                super()._act_on_(op)

        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.CNOT(qubits[1], qubits[2]),
            cirq.measure(*qubits, key="z"),
        )
        sim = bgls.Simulator(
            Logging(qubits),
            act_on,
            born.compute_probability_state_vector,
            seed=1,
        )
        rows = sim.run(circuit, repetitions=100).measurements["z"]
        assert len(calls) == 3  # H + 2 CNOTs, all through the override
        as_ints = rows @ np.array([4, 2, 1])
        assert set(np.unique(as_ints)) == {0, 7}

    def test_plan_fast_paths_flow_from_registry(self, qubits):
        """compile_plan's flags equal the registry's — no hasattr probing."""
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        for cls in (
            StateVectorSimulationState,
            StabilizerChFormSimulationState,
            CliffordTableauSimulationState,
        ):
            caps = capabilities_for(cls)
            plan = compile_plan(circuit, cls(qubits), act_on)
            assert plan.fast_stab == caps.stabilizer_sequences
            assert plan.fast_unitary == caps.base_unitary_dispatch


# -- custom user backend through the public hook ---------------------------

CALLS = {"single": 0, "many": 0}


class UserVectorState(StateVectorSimulationState):
    """A 'user' backend: distinct type, registered via the public hook."""


def user_probability(state, bits):
    return state.probability_of(bits)


def user_candidates(state, bits, support):
    CALLS["single"] += 1
    return state.candidate_probabilities(bits, support)


def user_candidates_many(state, bits_list, support):
    CALLS["many"] += 1
    return state.candidate_probabilities_many(bits_list, support)


@pytest.fixture
def user_backend():
    caps = register_backend(
        UserVectorState,
        name="user_vector",
        compute_probability=user_probability,
        candidates=user_candidates,
        candidates_many=user_candidates_many,
    )
    CALLS["single"] = CALLS["many"] = 0
    yield caps
    unregister_backend(UserVectorState)


class TestUserBackendRegistration:
    def test_registration_beats_parent_descriptor(self, qubits, user_backend):
        assert capabilities_for(UserVectorState) is user_backend
        assert capabilities_for(UserVectorState).name == "user_vector"

    def test_born_lookups_resolve_user_functions(self, user_backend):
        assert born.candidate_function_for(user_probability) is user_candidates
        assert (
            born.many_candidate_function_for(user_probability)
            is user_candidates_many
        )

    def test_simulator_reaches_batched_many_candidate_path(
        self, qubits, user_backend
    ):
        """The acceptance-criterion test: a custom backend registered via
        the public hook is served by the cross-bitstring batched oracle in
        parallel mode, exactly like a shipped backend."""
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.CNOT(qubits[1], qubits[2]),
            cirq.measure(*qubits, key="z"),
        )
        sim = bgls.Simulator(
            UserVectorState(qubits), bgls.act_on, user_probability, seed=7
        )
        result = sim.run(circuit, repetitions=400)
        assert CALLS["many"] > 0  # every resampling round was batched
        rows = result.measurements["z"]
        as_ints = rows @ np.array([4, 2, 1])
        assert set(np.unique(as_ints)) == {0, 7}
        frac = float(np.mean(as_ints == 0))
        assert 0.35 < frac < 0.65

    def test_introspected_capability_defaults(self, qubits, user_backend):
        # Unspecified flags were derived from the class surface.
        assert user_backend.base_unitary_dispatch
        assert user_backend.renormalize
        assert not user_backend.stabilizer_sequences

    def test_reregistration_purges_previous_aliases(self, qubits):
        def alias_fn(state, bits):
            return state.probability_of(bits)

        register_backend(
            UserVectorState,
            compute_probability=user_probability,
            scalar_aliases=(alias_fn,),
        )
        # Re-register without the alias, then unregister: no mapping may
        # survive from either registration.
        register_backend(UserVectorState, compute_probability=user_probability)
        assert capabilities_for_probability_fn(alias_fn) is None
        unregister_backend(UserVectorState)
        assert capabilities_for_probability_fn(user_probability) is None

    def test_snapshot_requires_restore(self):
        with pytest.raises(ValueError, match="snapshot and restore"):
            register_backend(UserVectorState, snapshot=lambda s: s)


class TestRegistryConformance:
    """All five backends sample correctly through the registry path."""

    @pytest.mark.parametrize(
        "make_state,prob_fn",
        [
            (StateVectorSimulationState, born.compute_probability_state_vector),
            (DensityMatrixSimulationState, born.compute_probability_density_matrix),
            (
                StabilizerChFormSimulationState,
                born.compute_probability_stabilizer_state,
            ),
            (CliffordTableauSimulationState, born.compute_probability_tableau),
            (MPSState, born.compute_probability_mps),
        ],
    )
    def test_ghz_through_registry_dispatch(self, qubits, make_state, prob_fn):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.CNOT(qubits[1], qubits[2]),
            cirq.measure(*qubits, key="z"),
        )
        sim = bgls.Simulator(make_state(qubits), bgls.act_on, prob_fn, seed=5)
        rows = sim.run(circuit, repetitions=300).measurements["z"]
        as_ints = rows @ np.array([4, 2, 1])
        assert set(np.unique(as_ints)) == {0, 7}
        assert 0.35 < float(np.mean(as_ints == 0)) < 0.65
