"""Tests for the noise-model framework (repro.noise)."""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.noise import (
    ComposedNoiseModel,
    ConstantNoiseModel,
    DepolarizingNoiseModel,
    IdleNoiseModel,
    NoNoise,
    PerQubitNoiseModel,
    ReadoutErrorModel,
    apply_noise,
    thermal_relaxation,
)
from repro.protocols import act_on
from repro.sampler import Simulator, Result
from repro.states import (
    DensityMatrixSimulationState,
    StateVectorSimulationState,
)


def bell_circuit(qs):
    return cirq.Circuit(
        cirq.H.on(qs[0]),
        cirq.CNOT.on(qs[0], qs[1]),
        cirq.measure(*qs, key="z"),
    )


class TestApplyNoise:
    def test_no_noise_is_identity_rewrite(self):
        qs = cirq.LineQubit.range(2)
        circuit = bell_circuit(qs)
        noisy = apply_noise(circuit, NoNoise())
        assert noisy.num_operations() == circuit.num_operations()
        assert noisy.is_unitary_circuit()

    def test_constant_model_adds_channel_per_touched_qubit(self):
        qs = cirq.LineQubit.range(2)
        circuit = bell_circuit(qs)
        model = ConstantNoiseModel(lambda: channels.depolarize(0.01))
        noisy = apply_noise(circuit, model)
        # H -> 1 channel; CNOT -> 2 channels; measurement -> none.
        assert noisy.num_operations() == 3 + 3
        assert not noisy.is_unitary_circuit()

    def test_constant_model_accepts_fixed_gate(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.X.on(qs[0]))
        model = ConstantNoiseModel(channels.bit_flip(0.5))
        noisy = apply_noise(circuit, model)
        assert noisy.num_operations() == 2

    def test_measurements_are_virtual(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.measure(qs[0], key="z"))
        model = ConstantNoiseModel(lambda: channels.depolarize(0.5))
        noisy = apply_noise(circuit, model)
        assert noisy.num_operations() == 1

    def test_depolarizing_model_two_qubit_rate(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.CNOT.on(*qs))
        model = DepolarizingNoiseModel(p1=0.001, p2=0.02)
        noisy = apply_noise(circuit, model)
        channel_ops = [
            op
            for op in noisy.all_operations()
            if isinstance(op.gate, channels.DepolarizingChannel)
        ]
        assert len(channel_ops) == 2
        assert all(op.gate.probability == 0.02 for op in channel_ops)

    def test_depolarizing_zero_rate_emits_nothing(self):
        qs = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(cirq.X.on(qs[0]))
        noisy = apply_noise(circuit, DepolarizingNoiseModel(p1=0.0))
        assert noisy.num_operations() == 1

    def test_depolarizing_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            DepolarizingNoiseModel(p1=1.5)

    def test_per_qubit_model_targets_one_qubit(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.X.on(qs[0]), cirq.X.on(qs[1]))
        model = PerQubitNoiseModel({qs[1]: channels.bit_flip(0.3)})
        noisy = apply_noise(circuit, model)
        flips = [
            op
            for op in noisy.all_operations()
            if isinstance(op.gate, channels.BitFlipChannel)
        ]
        assert len(flips) == 1
        assert flips[0].qubits == (qs[1],)

    def test_idle_model_hits_only_idle_qubits(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit()
        circuit.append_new_moment([cirq.X.on(qs[0])])
        model = IdleNoiseModel(channels.amplitude_damp(0.1))
        noisy = apply_noise(circuit, model, system_qubits=qs)
        damps = [
            op
            for op in noisy.all_operations()
            if isinstance(op.gate, channels.AmplitudeDampingChannel)
        ]
        assert {op.qubits[0] for op in damps} == {qs[1], qs[2]}

    def test_composed_model_concatenates(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.X.on(qs[0]))
        model = ComposedNoiseModel(
            [
                ConstantNoiseModel(lambda: channels.depolarize(0.01)),
                IdleNoiseModel(channels.amplitude_damp(0.1)),
            ]
        )
        noisy = apply_noise(circuit, model, system_qubits=qs)
        assert noisy.num_operations() == 3  # X + depolarize(q0) + damp(q1)


class TestTrajectoryVsDensityMatrix:
    """Trajectory sampling of a noisy circuit must match the exact
    density-matrix diagonal."""

    def _exact_diagonal(self, circuit, qs):
        rho = DensityMatrixSimulationState(qs, seed=0)
        for op in circuit.without_measurements().all_operations():
            act_on(op, rho)
        return rho.diagonal_probabilities()

    @pytest.mark.parametrize(
        "channel", [channels.depolarize(0.15), channels.amplitude_damp(0.3)]
    )
    def test_bell_with_noise(self, channel):
        qs = cirq.LineQubit.range(2)
        noisy = apply_noise(bell_circuit(qs), ConstantNoiseModel(channel))
        exact = self._exact_diagonal(noisy, qs)

        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
            seed=7,
        )
        reps = 4000
        bits = sim.sample_bitstrings(noisy, repetitions=reps)
        hist = np.zeros(4)
        for row in bits:
            hist[2 * row[0] + row[1]] += 1
        hist /= reps
        tv = 0.5 * np.abs(hist - exact).sum()
        assert tv < 0.05


class TestReadoutError:
    def test_zero_error_is_identity(self):
        model = ReadoutErrorModel(0.0, 0.0)
        bits = np.array([[0, 1], [1, 0]], dtype=np.int8)
        np.testing.assert_array_equal(model.apply_to_bits(bits, rng=0), bits)

    def test_certain_flip(self):
        model = ReadoutErrorModel(1.0, 1.0)
        bits = np.array([[0, 1, 0, 1]], dtype=np.int8)
        np.testing.assert_array_equal(
            model.apply_to_bits(bits, rng=0), 1 - bits
        )

    def test_asymmetric_rates(self):
        model = ReadoutErrorModel(p0_to_1=0.2, p1_to_0=0.0)
        rng = np.random.default_rng(5)
        zeros = np.zeros((20000, 1), dtype=np.int8)
        ones = np.ones((20000, 1), dtype=np.int8)
        assert 0.17 < model.apply_to_bits(zeros, rng).mean() < 0.23
        assert model.apply_to_bits(ones, rng).mean() == 1.0

    def test_apply_to_result(self):
        model = ReadoutErrorModel(1.0, 1.0)
        result = Result({"z": np.array([[0, 0], [1, 1]], dtype=np.int8)})
        noisy = model.apply_to_result(result, rng=0)
        np.testing.assert_array_equal(
            noisy.measurements["z"], np.array([[1, 1], [0, 0]])
        )

    def test_confusion_matrix_columns_sum_to_one(self):
        m = ReadoutErrorModel(0.1, 0.25).confusion_matrix()
        np.testing.assert_allclose(m.sum(axis=0), [1.0, 1.0])

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="p0_to_1"):
            ReadoutErrorModel(-0.1, 0.0)


class TestThermalRelaxation:
    def test_kraus_completeness(self):
        gate = thermal_relaxation(t1=50.0, t2=70.0, t=1.0)
        ks = gate._kraus_()
        total = sum(k.conj().T @ k for k in ks)
        np.testing.assert_allclose(total, np.eye(2), atol=1e-12)

    def test_t2_limit_enforced(self):
        with pytest.raises(ValueError, match="Unphysical"):
            thermal_relaxation(t1=10.0, t2=25.0, t=1.0)

    def test_zero_duration_is_identity(self):
        gate = thermal_relaxation(t1=50.0, t2=70.0, t=0.0)
        ks = gate._kraus_()
        np.testing.assert_allclose(ks[0], np.eye(2), atol=1e-12)
        for k in ks[1:]:
            np.testing.assert_allclose(k, 0, atol=1e-12)

    def test_excited_state_decays(self):
        qs = cirq.LineQubit.range(1)
        rho = DensityMatrixSimulationState(qs, seed=0)
        act_on(cirq.X.on(qs[0]), rho)
        act_on(thermal_relaxation(t1=1.0, t2=1.0, t=2.0).on(qs[0]), rho)
        probs = rho.diagonal_probabilities()
        # P(1) = e^{-t/T1} = e^{-2}
        assert probs[1] == pytest.approx(np.exp(-2.0), abs=1e-9)

    def test_coherence_decays_at_t2(self):
        qs = cirq.LineQubit.range(1)
        rho = DensityMatrixSimulationState(qs, seed=0)
        act_on(cirq.H.on(qs[0]), rho)
        act_on(thermal_relaxation(t1=10.0, t2=4.0, t=3.0).on(qs[0]), rho)
        dm = rho.density_matrix()
        assert abs(dm[0, 1]) == pytest.approx(0.5 * np.exp(-3.0 / 4.0), abs=1e-9)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            thermal_relaxation(t1=-1.0, t2=1.0, t=1.0)
        with pytest.raises(ValueError):
            thermal_relaxation(t1=1.0, t2=1.0, t=-1.0)
