"""Tests for the process-parallel trajectory sampler."""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.protocols import act_on
from repro.sampler import (
    Simulator,
    act_on_near_clifford,
    count_non_clifford_gates,
    run_parallel,
    sample_trajectories_parallel,
    stabilizer_extent_circuit,
    stabilizer_extent_rz,
)
from repro.sampler.parallel import _chunk_sizes
from repro.states import (
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)

QUBITS = cirq.LineQubit.range(2)


def sv_factory(seed):
    """Module-level factory (picklable for the process pool)."""
    return Simulator(
        initial_state=StateVectorSimulationState(QUBITS),
        apply_op=lambda op, s: act_on(op, s),
        compute_probability=born.compute_probability_state_vector,
        seed=seed,
    )


def stabilizer_factory(seed):
    return Simulator(
        initial_state=StabilizerChFormSimulationState(QUBITS),
        apply_op=act_on_near_clifford,
        compute_probability=born.compute_probability_stabilizer_state,
        seed=seed,
    )


def noisy_bell_circuit():
    return cirq.Circuit(
        cirq.H.on(QUBITS[0]),
        channels.depolarize(0.1).on(QUBITS[0]),
        cirq.CNOT.on(QUBITS[0], QUBITS[1]),
        cirq.measure(*QUBITS, key="z"),
    )


class TestChunking:
    def test_even_split(self):
        assert _chunk_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert _chunk_sizes(10, 3) == [4, 3, 3]

    def test_fewer_reps_than_chunks(self):
        assert _chunk_sizes(2, 8) == [1, 1]

    def test_total_preserved(self):
        for reps in (1, 7, 100, 1001):
            for chunks in (1, 3, 8):
                assert sum(_chunk_sizes(reps, chunks)) == reps


class TestParallelSampling:
    def test_repetition_count_and_keys(self):
        records, bits = sample_trajectories_parallel(
            sv_factory, noisy_bell_circuit(), 40, num_workers=2, seed=0
        )
        assert bits.shape == (40, 2)
        assert records["z"].shape == (40, 2)

    def test_single_worker_fallback(self):
        records, bits = sample_trajectories_parallel(
            sv_factory, noisy_bell_circuit(), 10, num_workers=1, seed=1
        )
        assert bits.shape == (10, 2)

    def test_distribution_matches_serial(self):
        circuit = noisy_bell_circuit()
        reps = 1200
        _, par_bits = sample_trajectories_parallel(
            sv_factory, circuit, reps, num_workers=2, seed=2
        )
        serial = sv_factory(3)
        ser_bits = serial.sample_bitstrings(circuit, repetitions=reps)

        def hist(bits):
            h = np.zeros(4)
            for row in bits:
                h[2 * row[0] + row[1]] += 1
            return h / len(bits)

        tv = 0.5 * np.abs(hist(par_bits) - hist(ser_bits)).sum()
        assert tv < 0.08

    def test_near_clifford_trajectories_parallelize(self):
        circuit = cirq.Circuit(
            cirq.H.on(QUBITS[0]),
            cirq.T.on(QUBITS[0]),
            cirq.CNOT.on(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="z"),
        )
        result = run_parallel(
            stabilizer_factory, circuit, 60, num_workers=2, seed=4
        )
        assert result.measurements["z"].shape == (60, 2)

    def test_run_parallel_requires_measurements(self):
        circuit = cirq.Circuit(cirq.H.on(QUBITS[0]))
        with pytest.raises(ValueError, match="no measurements"):
            run_parallel(sv_factory, circuit, 8, num_workers=1)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            sample_trajectories_parallel(
                sv_factory, noisy_bell_circuit(), 0
            )

    def test_reproducible_for_fixed_configuration(self):
        circuit = noisy_bell_circuit()
        _, a = sample_trajectories_parallel(
            sv_factory, circuit, 30, num_workers=2, seed=7
        )
        _, b = sample_trajectories_parallel(
            sv_factory, circuit, 30, num_workers=2, seed=7
        )
        np.testing.assert_array_equal(a, b)


class TestStabilizerExtent:
    def test_t_gate_extent(self):
        import math

        # zeta(T) = (cos(pi/8) + (sqrt(2)-1) sin(pi/8))^2 ~ 1.17 (Bravyi 2019)
        zeta = stabilizer_extent_rz(math.pi / 4)
        assert 1.1 < zeta < 1.3

    def test_clifford_angles_have_unit_extent(self):
        import math

        assert stabilizer_extent_rz(0.0) == pytest.approx(1.0)
        assert stabilizer_extent_rz(math.pi / 2) == pytest.approx(1.0)

    def test_circuit_extent_multiplies(self):
        q = cirq.LineQubit(0)
        one_t = cirq.Circuit(cirq.H.on(q), cirq.T.on(q))
        two_t = cirq.Circuit(cirq.H.on(q), cirq.T.on(q), cirq.T.on(q))
        z1 = stabilizer_extent_circuit(one_t)
        z2 = stabilizer_extent_circuit(two_t)
        assert z2 == pytest.approx(z1**2)

    def test_pure_clifford_circuit_extent_is_one(self):
        qs = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qs[0]), cirq.CNOT.on(*qs), cirq.measure(*qs, key="z")
        )
        assert stabilizer_extent_circuit(circuit) == pytest.approx(1.0)
        assert count_non_clifford_gates(circuit) == 0

    def test_count_non_clifford(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.H.on(q), cirq.T.on(q), cirq.S.on(q), cirq.T_DAG.on(q)
        )
        assert count_non_clifford_gates(circuit) == 2

    def test_extent_rejects_unsupported_gates(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.TOFFOLI.on(*qs))
        with pytest.raises(ValueError, match="extent"):
            stabilizer_extent_circuit(circuit)


class TestDeterministicWorkerSeeding:
    """Regression: worker seeds are a pure function of the user seed.

    Chunk ``i`` is seeded from ``SeedSequence([user_seed, i])``, so two
    identically seeded parallel runs must produce *identical* (not merely
    statistically compatible) histograms, and a chunk's seed must not
    depend on how many chunks follow it.
    """

    def test_identically_seeded_runs_produce_identical_histograms(self):
        from repro.sampler.parallel import _chunk_seeds

        circuit = noisy_bell_circuit()
        runs = []
        for _ in range(2):
            records, bits = sample_trajectories_parallel(
                sv_factory, circuit, 50, num_workers=2, seed=123
            )
            hist = np.zeros(4, dtype=np.int64)
            for row in bits:
                hist[2 * row[0] + row[1]] += 1
            runs.append((hist, records["z"].copy(), bits.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])
        np.testing.assert_array_equal(runs[0][2], runs[1][2])
        # The derivation itself is stable and chunk-count independent.
        assert _chunk_seeds(123, 3) == _chunk_seeds(123, 5)[:3]

    def test_chunked_runs_are_reproducible_too(self):
        circuit = noisy_bell_circuit()
        _, a = sample_trajectories_parallel(
            sv_factory, circuit, 30, num_workers=2, chunks_per_worker=3, seed=9
        )
        _, b = sample_trajectories_parallel(
            sv_factory, circuit, 30, num_workers=2, chunks_per_worker=3, seed=9
        )
        np.testing.assert_array_equal(a, b)

    def test_near_clifford_stochastic_runs_are_reproducible(self):
        circuit = cirq.Circuit(
            cirq.H.on(QUBITS[0]),
            cirq.T.on(QUBITS[0]),
            cirq.CNOT.on(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="z"),
        )
        a = run_parallel(stabilizer_factory, circuit, 40, num_workers=2, seed=3)
        b = run_parallel(stabilizer_factory, circuit, 40, num_workers=2, seed=3)
        np.testing.assert_array_equal(
            a.measurements["z"], b.measurements["z"]
        )

    def test_different_seeds_differ(self):
        circuit = noisy_bell_circuit()
        _, a = sample_trajectories_parallel(
            sv_factory, circuit, 40, num_workers=1, seed=0
        )
        _, b = sample_trajectories_parallel(
            sv_factory, circuit, 40, num_workers=1, seed=1
        )
        assert not np.array_equal(a, b)
