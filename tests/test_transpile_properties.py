"""Property-based tests (hypothesis) for the transpiler.

Invariants: decompositions reproduce their input unitary exactly (up to
the returned global phase), and every pass preserves the final-state
distribution of arbitrary random circuits.
"""

import cmath

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import circuits as cirq
from repro.protocols import act_on
from repro.states import StateVectorSimulationState
from repro.transpile import (
    CancelAdjacentInverses,
    DropNegligibleGates,
    default_pipeline,
    quantum_shannon_decompose,
    reduce_to_light_cone,
    zyz_angles,
    zyz_matrix,
)

_GATE_POOL_1Q = [cirq.H, cirq.S, cirq.S_DAG, cirq.T, cirq.X, cirq.Y, cirq.Z]
_GATE_POOL_2Q = [cirq.CNOT, cirq.CZ, cirq.SWAP]


@st.composite
def random_unitaries(draw, dim):
    """Haar-ish unitaries from seeded scipy (hypothesis controls the seed)."""
    import scipy.stats

    seed = draw(st.integers(0, 2**31 - 1))
    return scipy.stats.unitary_group.rvs(dim, random_state=seed)


@st.composite
def random_circuits(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    qs = cirq.LineQubit.range(n)
    length = draw(st.integers(min_value=0, max_value=20))
    ops = []
    for _ in range(length):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(_GATE_POOL_2Q))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append(gate.on(qs[a], qs[b]))
        else:
            gate = draw(st.sampled_from(_GATE_POOL_1Q))
            ops.append(gate.on(qs[draw(st.integers(0, n - 1))]))
    circuit = cirq.Circuit(ops)
    return n, qs, circuit


def final_probabilities(circuit, qubits):
    state = StateVectorSimulationState(qubits)
    for op in circuit.without_measurements().all_operations():
        act_on(op, state)
    return np.abs(state.state_vector()) ** 2


@given(random_unitaries(2))
@settings(max_examples=100, deadline=None)
def test_zyz_roundtrip_property(u):
    np.testing.assert_allclose(zyz_matrix(*zyz_angles(u)), u, atol=1e-8)


@given(random_unitaries(4))
@settings(max_examples=40, deadline=None)
def test_qsd_two_qubit_property(u):
    qs = cirq.LineQubit.range(2)
    alpha, ops = quantum_shannon_decompose(u, qs)
    circuit = cirq.Circuit(ops)
    got = (
        circuit.unitary(qubit_order=qs)
        if ops
        else np.eye(4, dtype=complex)
    )
    np.testing.assert_allclose(cmath.exp(1j * alpha) * got, u, atol=1e-7)


@given(random_unitaries(8))
@settings(max_examples=15, deadline=None)
def test_qsd_three_qubit_property(u):
    qs = cirq.LineQubit.range(3)
    alpha, ops = quantum_shannon_decompose(u, qs)
    circuit = cirq.Circuit(ops)
    got = circuit.unitary(qubit_order=qs)
    np.testing.assert_allclose(cmath.exp(1j * alpha) * got, u, atol=1e-7)


@given(random_circuits())
@settings(max_examples=60, deadline=None)
def test_cancel_inverses_preserves_distribution(case):
    _, qs, circuit = case
    out = CancelAdjacentInverses()(circuit)
    np.testing.assert_allclose(
        final_probabilities(out, qs), final_probabilities(circuit, qs), atol=1e-8
    )
    assert out.num_operations() <= circuit.num_operations()


@given(random_circuits())
@settings(max_examples=60, deadline=None)
def test_drop_negligible_preserves_distribution(case):
    _, qs, circuit = case
    out = DropNegligibleGates()(circuit)
    np.testing.assert_allclose(
        final_probabilities(out, qs), final_probabilities(circuit, qs), atol=1e-8
    )


@given(random_circuits())
@settings(max_examples=50, deadline=None)
def test_default_pipeline_preserves_distribution(case):
    _, qs, circuit = case
    with_measure = circuit.copy()
    with_measure.append(cirq.measure(*qs, key="z"))
    out = default_pipeline().run(with_measure)
    np.testing.assert_allclose(
        final_probabilities(out, qs),
        final_probabilities(with_measure, qs),
        atol=1e-8,
    )


@given(random_circuits(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_light_cone_preserves_measured_marginal(case, num_measured):
    n, qs, circuit = case
    num_measured = min(num_measured, n)
    with_measure = circuit.copy()
    with_measure.append(cirq.measure(*qs[:num_measured], key="z"))
    reduced = reduce_to_light_cone(with_measure)

    def marginal(c):
        probs = final_probabilities(c, qs).reshape((2,) * n)
        other = tuple(range(num_measured, n))
        return probs.sum(axis=other) if other else probs

    np.testing.assert_allclose(
        marginal(reduced), marginal(with_measure), atol=1e-8
    )
    assert reduced.num_operations() <= with_measure.num_operations()
