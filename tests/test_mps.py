"""Tests for the MPS simulation state."""

import itertools

import numpy as np
import pytest

from repro import circuits as cirq
from repro.mps import MPSOptions, MPSState
from repro.protocols import act_on
from repro.states import StateVectorSimulationState


def evolve(state, circuit):
    for op in circuit.all_operations():
        act_on(op, state)
    return state


class TestOptions:
    def test_defaults(self):
        opts = MPSOptions()
        assert opts.max_bond is None
        assert opts.renormalize

    def test_validation(self):
        with pytest.raises(ValueError):
            MPSOptions(max_bond=0)
        with pytest.raises(ValueError):
            MPSOptions(cutoff=-1)


class TestExactEvolution:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dense_on_random_circuits(self, seed):
        qs = cirq.LineQubit.range(4)
        circ = cirq.generate_random_circuit(qs, 12, random_state=seed)
        sv = evolve(StateVectorSimulationState(qs), circ)
        mps = evolve(MPSState(qs), circ)
        np.testing.assert_allclose(
            mps.state_vector(), sv.state_vector(), atol=1e-8
        )

    def test_nonadjacent_two_qubit_gates(self):
        qs = cirq.LineQubit.range(5)
        circ = cirq.Circuit(
            cirq.H(qs[0]), cirq.CNOT(qs[0], qs[4]), cirq.CNOT(qs[4], qs[2])
        )
        sv = evolve(StateVectorSimulationState(qs), circ)
        mps = evolve(MPSState(qs), circ)
        np.testing.assert_allclose(
            mps.state_vector(), sv.state_vector(), atol=1e-9
        )

    def test_initial_basis_state(self):
        qs = cirq.LineQubit.range(3)
        mps = MPSState(qs, initial_state=0b101)
        assert mps.probability_of([1, 0, 1]) == pytest.approx(1.0)

    def test_three_qubit_gate_rejected(self):
        qs = cirq.LineQubit.range(3)
        mps = MPSState(qs)
        with pytest.raises(ValueError, match="1- and 2-qubit"):
            act_on(cirq.CCX(*qs), mps)

    def test_norm_preserved(self):
        qs = cirq.LineQubit.range(5)
        circ = cirq.generate_random_circuit(qs, 15, random_state=3)
        mps = evolve(MPSState(qs), circ)
        assert mps.norm_squared() == pytest.approx(1.0, abs=1e-9)


class TestAmplitudes:
    def test_amplitude_matches_dense(self):
        qs = cirq.LineQubit.range(4)
        circ = cirq.generate_random_circuit(qs, 10, random_state=5)
        sv = evolve(StateVectorSimulationState(qs), circ)
        mps = evolve(MPSState(qs), circ)
        dense = sv.state_vector()
        for idx in range(16):
            bits = [(idx >> (3 - j)) & 1 for j in range(4)]
            assert mps.amplitude_of(bits) == pytest.approx(dense[idx], abs=1e-9)

    @pytest.mark.parametrize("support", [[0], [1, 3], [3, 1], [2, 0]])
    def test_candidate_amplitudes_match_loop(self, support):
        qs = cirq.LineQubit.range(4)
        circ = cirq.generate_random_circuit(qs, 10, random_state=6)
        mps = evolve(MPSState(qs), circ)
        bits = [1, 0, 1, 0]
        fast = mps.candidate_amplitudes(bits, support)
        for idx, cand in enumerate(
            itertools.product([0, 1], repeat=len(support))
        ):
            full = list(bits)
            for axis, b in zip(support, cand):
                full[axis] = b
            assert fast[idx] == pytest.approx(mps.amplitude_of(full), abs=1e-9)

    def test_candidate_probabilities_are_squared_amps(self):
        qs = cirq.LineQubit.range(3)
        circ = cirq.generate_random_circuit(qs, 8, random_state=7)
        mps = evolve(MPSState(qs), circ)
        amps = mps.candidate_amplitudes([0, 0, 0], [1])
        probs = mps.candidate_probabilities([0, 0, 0], [1])
        np.testing.assert_allclose(probs, np.abs(amps) ** 2, atol=1e-12)


class TestBondStructure:
    def test_ghz_chain_bond_dimension_two(self):
        qs = cirq.LineQubit.range(6)
        circ = cirq.Circuit(cirq.H(qs[0]))
        for a, b in zip(qs, qs[1:]):
            circ.append(cirq.CNOT(a, b))
        mps = evolve(MPSState(qs), circ)
        assert mps.max_bond_dimension() == 2

    def test_product_state_has_no_bonds(self):
        qs = cirq.LineQubit.range(4)
        circ = cirq.Circuit([cirq.H(q) for q in qs])
        mps = evolve(MPSState(qs), circ)
        assert mps.max_bond_dimension() == 1

    def test_cutoff_trims_unentangling_gates(self):
        """CNOT twice = identity: the second SVD re-splits to bond dim 1."""
        qs = cirq.LineQubit.range(2)
        mps = MPSState(qs)
        act_on(cirq.H(qs[0]), mps)
        act_on(cirq.CNOT(qs[0], qs[1]), mps)
        assert mps.bond_dimension(0) == 2
        act_on(cirq.CNOT(qs[0], qs[1]), mps)
        assert mps.bond_dimension(0) == 1


class TestTruncation:
    def test_max_bond_caps_dimension(self):
        qs = cirq.LineQubit.range(6)
        circ = cirq.generate_random_circuit(qs, 25, op_density=0.9, random_state=1)
        mps = evolve(MPSState(qs, options=MPSOptions(max_bond=2)), circ)
        assert mps.max_bond_dimension() <= 2

    def test_truncation_tracks_fidelity(self):
        qs = cirq.LineQubit.range(6)
        circ = cirq.generate_random_circuit(qs, 25, op_density=0.9, random_state=1)
        exact = evolve(MPSState(qs), circ)
        truncated = evolve(MPSState(qs, options=MPSOptions(max_bond=2)), circ)
        assert exact.estimated_fidelity == pytest.approx(1.0, abs=1e-9)
        assert truncated.estimated_fidelity < 1.0

    def test_renormalize_keeps_unit_norm_under_truncation(self):
        qs = cirq.LineQubit.range(5)
        circ = cirq.generate_random_circuit(qs, 20, op_density=0.9, random_state=2)
        mps = evolve(MPSState(qs, options=MPSOptions(max_bond=2)), circ)
        assert mps.norm_squared() == pytest.approx(1.0, abs=1e-6)

    def test_ghz_unaffected_by_small_bond_cap(self):
        """GHZ needs only chi=2, so max_bond=2 is lossless."""
        qs = cirq.LineQubit.range(6)
        circ = cirq.Circuit(cirq.H(qs[0]))
        for a, b in zip(qs, qs[1:]):
            circ.append(cirq.CNOT(a, b))
        mps = evolve(MPSState(qs, options=MPSOptions(max_bond=2)), circ)
        assert mps.estimated_fidelity == pytest.approx(1.0, abs=1e-9)
        assert mps.probability_of([0] * 6) == pytest.approx(0.5, abs=1e-9)


class TestMeasurementAndChannels:
    def test_measure_ghz_correlations(self):
        qs = cirq.LineQubit.range(4)
        circ = cirq.Circuit(cirq.H(qs[0]))
        for a, b in zip(qs, qs[1:]):
            circ.append(cirq.CNOT(a, b))
        outcomes = set()
        for seed in range(30):
            mps = evolve(MPSState(qs, seed=seed), circ)
            bits = tuple(mps.measure([0, 1, 2, 3]))
            outcomes.add(bits)
        assert outcomes == {(0, 0, 0, 0), (1, 1, 1, 1)}

    def test_project(self):
        qs = cirq.LineQubit.range(2)
        mps = MPSState(qs)
        act_on(cirq.H(qs[0]), mps)
        act_on(cirq.CNOT(qs[0], qs[1]), mps)
        mps.project([0], [1])
        assert mps.probability_of([1, 1]) == pytest.approx(1.0, abs=1e-9)
        assert mps.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_project_impossible_raises(self):
        qs = cirq.LineQubit.range(1)
        mps = MPSState(qs)
        with pytest.raises(ValueError):
            mps.project([0], [1])

    def test_channel_trajectory(self):
        qs = cirq.LineQubit.range(1)
        flips = 0
        for seed in range(200):
            mps = MPSState(qs, seed=seed)
            act_on(cirq.bit_flip(0.3)(qs[0]), mps)
            flips += int(mps.probability_of([1]) > 0.5)
        assert 0.2 < flips / 200 < 0.4


def test_copy_independent():
    qs = cirq.LineQubit.range(2)
    mps = MPSState(qs)
    act_on(cirq.H(qs[0]), mps)
    clone = mps.copy()
    act_on(cirq.X(qs[1]), clone)
    assert mps.probability_of([0, 0]) == pytest.approx(0.5)
    assert clone.probability_of([0, 1]) == pytest.approx(0.5)


def test_i_str_naming():
    qs = cirq.LineQubit.range(3)
    mps = MPSState(qs)
    assert mps.i_str(0) == "i0"
    assert mps.i_str(2) == "i2"


class TestCrossGateEnvironmentCache:
    """Environment caches persist across gates with bond-range invalidation."""

    @staticmethod
    def _evolved(n_qubits, depth, seed=0):
        qs = cirq.LineQubit.range(n_qubits)
        mps = MPSState(qs)
        circuit = cirq.random_clifford_circuit(qs, depth, random_state=seed)
        for op in circuit.all_operations():
            act_on(op, mps)
        return qs, mps

    def test_caches_survive_untouched_gates(self):
        qs, mps = self._evolved(6, 12)
        front = [[0] * 6, [1, 0, 1, 0, 1, 0], [1] * 6]
        mps.candidate_probabilities_many(front, [4, 5])
        populated_left = set(mps._left_env_cache)
        assert populated_left  # prefixes over sites 0..3 were cached
        # A gate at the right end of the chain keeps every left prefix.
        act_on(cirq.X(qs[5]), mps)
        assert set(mps._left_env_cache) == populated_left
        # A gate at site 1 keeps only the length-1 prefixes.
        act_on(cirq.X(qs[1]), mps)
        assert all(len(key) <= 1 for key in mps._left_env_cache)

    def test_right_cache_invalidation_mirrors_left(self):
        qs, mps = self._evolved(6, 12)
        front = [[0] * 6, [1, 1, 0, 0, 1, 1]]
        mps.candidate_probabilities_many(front, [0, 1])
        assert mps._right_env_cache  # suffixes over sites 2..5
        act_on(cirq.X(qs[4]), mps)
        # Entries covering site 4 (length >= n - 4 = 2) are gone.
        assert all(len(key) < 2 for key in mps._right_env_cache)

    def test_second_call_reuses_environments(self):
        _, mps = self._evolved(8, 16)
        front = [[int(b) for b in f"{i:08b}"] for i in (0, 5, 37, 255)]
        mps.candidate_probabilities_many(front, [3, 4])
        misses_first = mps.env_cache_misses
        mps.env_cache_hits = 0
        mps.candidate_probabilities_many(front, [3, 4])
        # Identical call: every environment lookup is now a hit.
        assert mps.env_cache_misses == misses_first
        assert mps.env_cache_hits > 0

    def test_results_match_fresh_state_after_gates(self):
        """Correctness under invalidation: cached answers equal cold ones."""
        qs, mps = self._evolved(6, 10, seed=3)
        rng = np.random.default_rng(0)
        front = [list(rng.integers(0, 2, 6)) for _ in range(5)]
        for step in range(4):
            support = [int(rng.integers(0, 5))]
            support.append(support[0] + 1)
            warm = mps.candidate_probabilities_many(front, support)
            cold = mps.copy().candidate_probabilities_many(front, support)
            np.testing.assert_allclose(warm, cold, atol=1e-12)
            # Mutate somewhere and keep going.
            act_on(cirq.H(qs[step % 6]), mps)

    def test_copy_starts_with_empty_caches(self):
        _, mps = self._evolved(5, 8)
        mps.candidate_probabilities_many([[0] * 5], [2])
        assert mps._left_env_cache or mps._right_env_cache
        clone = mps.copy()
        assert not clone._left_env_cache and not clone._right_env_cache

    def test_channel_clears_caches(self):
        qs, mps = self._evolved(4, 6)
        mps.candidate_probabilities_many([[0] * 4], [1])
        mps.apply_channel(
            [np.sqrt(0.5) * np.eye(2), np.sqrt(0.5) * np.eye(2)], [2]
        )
        assert not mps._left_env_cache and not mps._right_env_cache
