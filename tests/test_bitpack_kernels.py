"""Property tests: packed stabilizer kernels vs the unpacked reference path.

The production engines (:class:`CliffordTableau`, :class:`StabilizerChForm`)
store their binary matrices as ``uint64`` words; the pre-packing
implementations are retained verbatim in :mod:`repro.states.reference`.
These tests drive both through identical random Clifford programs —
including measurement/collapse and forced projections — and assert
*bit-exact* agreement gate-for-gate, plus agreement with the dense
state-vector simulator on the final distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.states import bitpack as bp
from repro.states.chform import StabilizerChForm
from repro.states.reference import (
    UnpackedCliffordTableau,
    UnpackedStabilizerChForm,
)
from repro.states.tableau import CliffordTableau

_ONE_QUBIT = ["h", "s", "sdg", "x", "y", "z"]
_TWO_QUBIT = ["cx", "cz", "swap"]
_CH_TWO_QUBIT = ["cx", "cz"]  # the CH form has no native SWAP primitive


@st.composite
def clifford_programs(draw, two_qubit=tuple(_TWO_QUBIT)):
    n = draw(st.integers(min_value=1, max_value=6))
    length = draw(st.integers(min_value=0, max_value=30))
    ops = []
    for _ in range(length):
        if n >= 2 and draw(st.booleans()):
            name = draw(st.sampled_from(list(two_qubit)))
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            ops.append((name, (a, b)))
        else:
            name = draw(st.sampled_from(_ONE_QUBIT))
            ops.append((name, (draw(st.integers(0, n - 1)),)))
    return n, ops


def _assert_tableaus_equal(packed: CliffordTableau, ref: UnpackedCliffordTableau):
    np.testing.assert_array_equal(packed.x, ref.x)
    np.testing.assert_array_equal(packed.z, ref.z)
    np.testing.assert_array_equal(packed.r, ref.r)


def _assert_chforms_equal(packed: StabilizerChForm, ref: UnpackedStabilizerChForm):
    np.testing.assert_array_equal(packed.F, ref.F)
    np.testing.assert_array_equal(packed.G, ref.G)
    np.testing.assert_array_equal(packed.M, ref.M)
    np.testing.assert_array_equal(packed.gamma, ref.gamma)
    np.testing.assert_array_equal(packed.v, ref.v)
    np.testing.assert_array_equal(packed.s, ref.s)
    assert packed.omega == pytest.approx(ref.omega, abs=1e-12)


class TestBitpackHelpers:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        for n in (1, 7, 63, 64, 65, 130):
            mat = rng.integers(0, 2, size=(5, n)).astype(np.uint8)
            packed = bp.pack_rows(mat)
            assert packed.dtype == np.uint64
            assert packed.shape == (5, bp.num_words(n))
            np.testing.assert_array_equal(bp.unpack_rows(packed, n), mat)

    def test_popcount_matches_unpacked(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**64, size=(4, 3), dtype=np.uint64)
        expected = bp.unpack_rows(words, 192).sum()
        assert bp.count_bits(words) == int(expected)

    def test_bit_accessors(self):
        vec = np.zeros(2, dtype=np.uint64)
        for col in (0, 1, 63, 64, 100):
            bp.set_bit(vec, col, 1)
            assert bp.get_bit(vec, col) == 1
        np.testing.assert_array_equal(bp.bit_positions(vec, 128), [0, 1, 63, 64, 100])
        bp.set_bit(vec, 63, 0)
        assert bp.get_bit(vec, 63) == 0

    def test_mask_sets_first_n_bits(self):
        for n in (1, 64, 65, 127, 128):
            m = bp.mask(n)
            assert bp.count_bits(m) == n


class TestPackedTableauAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(clifford_programs())
    def test_gate_for_gate_agreement(self, program):
        n, ops = program
        packed = CliffordTableau(n)
        ref = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
            _assert_tableaus_equal(packed, ref)

    @settings(max_examples=40, deadline=None)
    @given(clifford_programs(), st.integers(0, 2**31 - 1))
    def test_measurement_collapse_agreement(self, program, seed):
        """Identical RNG streams drive identical collapses in both engines."""
        n, ops = program
        packed = CliffordTableau(n)
        ref = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        for a in range(n):
            bit_p = packed.measure(a, np.random.default_rng(seed + a))
            bit_r = ref.measure(a, np.random.default_rng(seed + a))
            assert bit_p == bit_r
            _assert_tableaus_equal(packed, ref)

    @settings(max_examples=40, deadline=None)
    @given(clifford_programs(), st.integers(0, 2**31 - 1))
    def test_project_measurement_agreement(self, program, seed):
        """Forced projections return identical 0.0 / 0.5 / 1.0 factors."""
        n, ops = program
        packed = CliffordTableau(n)
        ref = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        rng = np.random.default_rng(seed)
        for a in range(n):
            bit = int(rng.integers(2))
            f_p = packed.project_measurement(a, bit)
            f_r = ref.project_measurement(a, bit)
            assert f_p == f_r
            if f_p != 0.0:  # 0.0 leaves the state untouched by contract
                _assert_tableaus_equal(packed, ref)

    @settings(max_examples=30, deadline=None)
    @given(clifford_programs())
    def test_probability_of_agreement(self, program):
        n, ops = program
        packed = CliffordTableau(n)
        ref = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        rng = np.random.default_rng(7)
        for _ in range(4):
            bits = list(rng.integers(0, 2, size=n))
            assert packed.probability_of(bits) == ref.probability_of(bits)

    def test_forced_outcome_edge_cases(self):
        """project_measurement edge cases: forced 0.0 and 1.0 outcomes."""
        t = CliffordTableau(2)  # |00>
        assert t.project_measurement(0, 0) == 1.0
        assert t.project_measurement(0, 1) == 0.0
        # A zero-probability projection must leave the state untouched.
        ref = UnpackedCliffordTableau(2)
        ref.project_measurement(0, 1)
        _assert_tableaus_equal(t, ref)
        t.apply_x(1)
        assert t.project_measurement(1, 1) == 1.0
        t.apply_h(0)
        assert t.project_measurement(0, 1) == 0.5
        assert t.deterministic_outcome(0) == 1

    @settings(max_examples=30, deadline=None)
    @given(clifford_programs())
    def test_candidate_probabilities_match_per_candidate_loop(self, program):
        n, ops = program
        packed = CliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
        rng = np.random.default_rng(11)
        bits = list(rng.integers(0, 2, size=n))
        for support in ([0], [n - 1], list({0, n - 1}), list(range(min(n, 2)))):
            got = packed.candidate_probabilities(bits, support)
            k = len(support)
            expected = np.empty(2**k)
            cand = list(bits)
            for idx in range(2**k):
                for pos, axis in enumerate(support):
                    cand[axis] = (idx >> (k - 1 - pos)) & 1
                expected[idx] = packed.probability_of(cand)
            np.testing.assert_allclose(got, expected, atol=1e-12)


class TestPackedChFormAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(clifford_programs(two_qubit=tuple(_CH_TWO_QUBIT)))
    def test_gate_for_gate_agreement(self, program):
        n, ops = program
        packed = StabilizerChForm(n)
        ref = UnpackedStabilizerChForm(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
            _assert_chforms_equal(packed, ref)

    @settings(max_examples=40, deadline=None)
    @given(clifford_programs(two_qubit=tuple(_CH_TWO_QUBIT)), st.integers(0, 2**31 - 1))
    def test_measurement_collapse_agreement(self, program, seed):
        n, ops = program
        packed = StabilizerChForm(n)
        ref = UnpackedStabilizerChForm(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        for a in range(n):
            bit_p = packed.measure(a, np.random.default_rng(seed + a))
            bit_r = ref.measure(a, np.random.default_rng(seed + a))
            assert bit_p == bit_r
            _assert_chforms_equal(packed, ref)

    @settings(max_examples=30, deadline=None)
    @given(clifford_programs(two_qubit=tuple(_CH_TWO_QUBIT)))
    def test_amplitudes_agree_exactly(self, program):
        n, ops = program
        packed = StabilizerChForm(n)
        ref = UnpackedStabilizerChForm(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        rng = np.random.default_rng(3)
        for _ in range(6):
            bits = list(rng.integers(0, 2, size=n))
            assert packed.inner_product_with_basis_state(
                bits
            ) == ref.inner_product_with_basis_state(bits)

    @settings(max_examples=30, deadline=None)
    @given(clifford_programs(two_qubit=tuple(_CH_TWO_QUBIT)))
    def test_candidate_probabilities_match_per_candidate_loop(self, program):
        n, ops = program
        packed = StabilizerChForm(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
        rng = np.random.default_rng(5)
        bits = list(rng.integers(0, 2, size=n))
        for support in ([0], [n - 1], list({0, n - 1})):
            got = packed.candidate_probabilities(bits, support)
            k = len(support)
            expected = np.empty(2**k)
            cand = list(bits)
            for idx in range(2**k):
                for pos, axis in enumerate(support):
                    cand[axis] = (idx >> (k - 1 - pos)) & 1
                expected[idx] = packed.probability_of(cand)
            np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_project_measurement_forced_edge_cases(self):
        form = StabilizerChForm(2)  # |00>
        form.project_measurement(0, 0)  # probability 1: no-op
        ref = UnpackedStabilizerChForm(2)
        _assert_chforms_equal(form, ref)
        with pytest.raises(ValueError, match="probability 0"):
            form.project_measurement(0, 1)
        form.apply_h(0)
        form.project_measurement(0, 1)
        is_random, bit = form.measurement_outcome_info(0)
        assert not is_random and bit == 1


class TestCrossWordBoundaries:
    """The same agreement checks at widths spanning uint64 word boundaries.

    Hypothesis keeps its widths small; these parametrized runs are the CI
    coverage for multi-word packing (tail masks, ``packed_eye`` beyond
    word 0, cross-word cumulative XOR in ``deterministic_outcome`` and
    the CH amplitude accumulation).
    """

    WIDTHS = [63, 64, 65, 70, 130]

    @staticmethod
    def _random_program(n, length, rng, two_qubit):
        ops = []
        for _ in range(length):
            if rng.random() < 0.5:
                a, b = (int(v) for v in rng.choice(n, size=2, replace=False))
                ops.append((two_qubit[int(rng.integers(len(two_qubit)))], (a, b)))
            else:
                ops.append(
                    (_ONE_QUBIT[int(rng.integers(len(_ONE_QUBIT)))], (int(rng.integers(n)),))
                )
        return ops

    @pytest.mark.parametrize("n", WIDTHS)
    def test_tableau_wide_agreement(self, n):
        rng = np.random.default_rng(n)
        ops = self._random_program(n, 50, rng, _TWO_QUBIT)
        packed = CliffordTableau(n)
        ref = UnpackedCliffordTableau(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        _assert_tableaus_equal(packed, ref)
        for a in range(0, n, 7):
            assert packed.measure(a, np.random.default_rng(a)) == ref.measure(
                a, np.random.default_rng(a)
            )
        _assert_tableaus_equal(packed, ref)
        bits = [packed.copy().measure(a, np.random.default_rng(1)) for a in range(n)]
        support = [62, 65] if n > 65 else [0, n - 1]
        got = packed.candidate_probabilities(bits, support)
        cand = list(bits)
        for idx in range(4):
            cand[support[0]] = (idx >> 1) & 1
            cand[support[1]] = idx & 1
            assert got[idx] == pytest.approx(ref.probability_of(cand), abs=1e-12)

    @pytest.mark.parametrize("n", WIDTHS)
    def test_chform_wide_agreement(self, n):
        rng = np.random.default_rng(n + 1)
        ops = self._random_program(n, 50, rng, _CH_TWO_QUBIT)
        packed = StabilizerChForm(n)
        ref = UnpackedStabilizerChForm(n)
        for name, qs in ops:
            getattr(packed, f"apply_{name}")(*qs)
            getattr(ref, f"apply_{name}")(*qs)
        _assert_chforms_equal(packed, ref)
        for _ in range(5):
            bits = list(rng.integers(0, 2, size=n))
            assert packed.inner_product_with_basis_state(
                bits
            ) == ref.inner_product_with_basis_state(bits)
            assert packed.probability_of(bits) == pytest.approx(
                ref.probability_of(bits), abs=1e-12
            )
        support = [62, 65] if n > 65 else [0, n - 1]
        bits = list(rng.integers(0, 2, size=n))
        got = packed.candidate_probabilities(bits, support)
        cand = list(bits)
        for idx in range(4):
            cand[support[0]] = (idx >> 1) & 1
            cand[support[1]] = idx & 1
            assert got[idx] == pytest.approx(ref.probability_of(cand), abs=1e-12)
        for a in range(0, n, 9):
            assert packed.measure(a, np.random.default_rng(a)) == ref.measure(
                a, np.random.default_rng(a)
            )
        _assert_chforms_equal(packed, ref)


class TestPackedEnginesAgainstStateVector:
    """Both packed engines reproduce dense wavefunction distributions."""

    @settings(max_examples=25, deadline=None)
    @given(clifford_programs(two_qubit=tuple(_CH_TWO_QUBIT)))
    def test_chform_state_vector_matches_dense(self, program):
        from repro import circuits as cirq
        from repro.protocols import act_on
        from repro.states import StateVectorSimulationState

        n, ops = program
        qubits = cirq.LineQubit.range(n)
        gate_map = {
            "h": cirq.H, "s": cirq.S, "sdg": cirq.S_DAG,
            "x": cirq.X, "y": cirq.Y, "z": cirq.Z,
            "cx": cirq.CNOT, "cz": cirq.CZ,
        }
        form = StabilizerChForm(n)
        sv = StateVectorSimulationState(qubits)
        for name, qs in ops:
            getattr(form, f"apply_{name}")(*qs)
            act_on(gate_map[name].on(*[qubits[q] for q in qs]), sv)
        np.testing.assert_allclose(
            form.state_vector(), sv.tensor.reshape(-1), atol=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(clifford_programs())
    def test_tableau_probabilities_match_dense(self, program):
        from repro import circuits as cirq
        from repro.protocols import act_on
        from repro.states import StateVectorSimulationState

        n, ops = program
        qubits = cirq.LineQubit.range(n)
        gate_map = {
            "h": cirq.H, "s": cirq.S, "sdg": cirq.S_DAG,
            "x": cirq.X, "y": cirq.Y, "z": cirq.Z,
            "cx": cirq.CNOT, "cz": cirq.CZ, "swap": cirq.SWAP,
        }
        tab = CliffordTableau(n)
        sv = StateVectorSimulationState(qubits)
        for name, qs in ops:
            getattr(tab, f"apply_{name}")(*qs)
            act_on(gate_map[name].on(*[qubits[q] for q in qs]), sv)
        dense = np.abs(sv.tensor.reshape(-1)) ** 2
        for idx in range(2**n):
            bits = [(idx >> (n - 1 - j)) & 1 for j in range(n)]
            assert tab.probability_of(bits) == pytest.approx(
                float(dense[idx]), abs=1e-9
            )
