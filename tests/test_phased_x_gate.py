"""Tests for PhasedXPowGate (the sqrt-W member of the supremacy gate set)."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import PhasedXPowGate
from repro.protocols import act_on, has_stabilizer_effect, unitary
from repro.states import (
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def z_pow(p):
    return np.diag([1.0, np.exp(1j * np.pi * p)])


class TestUnitary:
    @pytest.mark.parametrize("p", [0.0, 0.25, 0.5, 1.0, -0.3])
    @pytest.mark.parametrize("t", [0.5, 1.0, 0.37])
    def test_equals_sandwich(self, p, t):
        gate = PhasedXPowGate(phase_exponent=p, exponent=t)
        want = z_pow(p) @ unitary(cirq.XPowGate(exponent=t)) @ z_pow(p).conj().T
        np.testing.assert_allclose(unitary(gate), want, atol=1e-12)

    def test_phase_zero_is_x_pow(self):
        gate = PhasedXPowGate(phase_exponent=0.0, exponent=0.7)
        np.testing.assert_allclose(
            unitary(gate), unitary(cirq.XPowGate(exponent=0.7)), atol=1e-12
        )

    def test_phase_half_is_y_pow(self):
        gate = PhasedXPowGate(phase_exponent=0.5, exponent=0.7)
        np.testing.assert_allclose(
            unitary(gate), unitary(cirq.YPowGate(exponent=0.7)), atol=1e-12
        )

    def test_is_unitary(self):
        u = unitary(PhasedXPowGate(phase_exponent=0.25, exponent=0.5))
        np.testing.assert_allclose(u.conj().T @ u, np.eye(2), atol=1e-12)

    def test_pow_multiplies_exponent(self):
        gate = PhasedXPowGate(phase_exponent=0.25, exponent=0.5)
        squared = gate**2
        np.testing.assert_allclose(
            unitary(squared), unitary(gate) @ unitary(gate), atol=1e-12
        )


class TestCliffordness:
    def test_sqrt_w_is_not_clifford(self):
        gate = PhasedXPowGate(phase_exponent=0.25, exponent=0.5)
        assert gate._stabilizer_sequence_() is None
        assert not has_stabilizer_effect(gate)

    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0, -0.5])
    @pytest.mark.parametrize("t", [0.5, 1.0, -0.5, 2.0])
    def test_half_integer_cases_are_clifford_and_exact(self, p, t):
        gate = PhasedXPowGate(phase_exponent=p, exponent=t)
        assert gate._stabilizer_sequence_() is not None
        q = cirq.LineQubit.range(1)
        sv = StateVectorSimulationState(q)
        ch = StabilizerChFormSimulationState(q)
        act_on(cirq.H.on(q[0]), sv)
        act_on(cirq.H.on(q[0]), ch)
        act_on(gate.on(q[0]), sv)
        act_on(gate.on(q[0]), ch)
        np.testing.assert_allclose(
            sv.state_vector(), ch.state_vector(), atol=1e-9
        )


class TestParameters:
    def test_parameterized_resolves(self):
        s = cirq.Symbol("a")
        gate = PhasedXPowGate(phase_exponent=0.25, exponent=s)
        assert gate._is_parameterized_()
        resolved = gate._resolve_parameters_(cirq.ParamResolver({"a": 0.5}))
        assert not resolved._is_parameterized_()
        assert float(resolved.exponent) == 0.5

    def test_parameterized_has_no_unitary(self):
        gate = PhasedXPowGate(phase_exponent=cirq.Symbol("p"), exponent=1.0)
        assert gate._unitary_() is None

    def test_equality_and_hash(self):
        a = PhasedXPowGate(phase_exponent=0.25, exponent=0.5)
        b = PhasedXPowGate(phase_exponent=0.25, exponent=0.5)
        c = PhasedXPowGate(phase_exponent=0.5, exponent=0.5)
        assert a == b and hash(a) == hash(b)
        assert a != c
