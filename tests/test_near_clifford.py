"""Tests for sum-over-Cliffords near-Clifford sampling (paper Sec. 4.2)."""

import math

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, fractional_overlap
from repro.sampler.near_clifford import (
    act_on_near_clifford,
    rotation_branch_weights,
    stabilizer_extent_rz,
)
from repro.states import StabilizerChFormSimulationState


class TestBranchWeights:
    def test_zero_angle_is_pure_identity(self):
        c_i, c_s = rotation_branch_weights(0.0)
        assert c_i == pytest.approx(1.0)
        assert c_s == pytest.approx(0.0)

    def test_pi_over_two_is_pure_s(self):
        """R(pi/2) ~ S up to phase: identity coefficient vanishes."""
        c_i, c_s = rotation_branch_weights(math.pi / 2)
        assert c_i == pytest.approx(0.0, abs=1e-12)
        assert c_s == pytest.approx(math.sqrt(2) * math.sin(math.pi / 4))

    def test_decomposition_reconstructs_rz(self):
        """c_I*I + c_S*S (with phases) equals R(theta) exactly."""
        for theta in (0.1, 0.7, math.pi / 4, 2.0, -0.5):
            c1 = math.cos(theta / 2) - math.sin(theta / 2)
            c2 = math.sqrt(2) * np.exp(-1j * math.pi / 4) * math.sin(theta / 2)
            s_mat = np.diag([1, 1j])
            reconstructed = c1 * np.eye(2) + c2 * s_mat
            expected = np.diag(
                [np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]
            )
            np.testing.assert_allclose(reconstructed, expected, atol=1e-12)

    def test_stabilizer_extent_minimized_at_clifford_angles(self):
        assert stabilizer_extent_rz(0.0) == pytest.approx(1.0)
        assert stabilizer_extent_rz(math.pi / 2) == pytest.approx(1.0)
        assert stabilizer_extent_rz(math.pi / 4) > 1.0


class TestActOnNearClifford:
    def test_clifford_gates_apply_exactly(self):
        qs = cirq.LineQubit.range(2)
        state = StabilizerChFormSimulationState(qs, seed=0)
        act_on_near_clifford(cirq.H(qs[0]), state)
        act_on_near_clifford(cirq.CNOT(qs[0], qs[1]), state)
        np.testing.assert_allclose(
            np.abs(state.state_vector()) ** 2, [0.5, 0, 0, 0.5], atol=1e-9
        )

    def test_clifford_angle_rz_applies_deterministically(self):
        """Rz(pi) is Clifford (Z up to phase) - no stochastic branch."""
        qs = cirq.LineQubit.range(1)
        state = StabilizerChFormSimulationState(qs, seed=0)
        act_on_near_clifford(cirq.H(qs[0]), state)
        act_on_near_clifford(cirq.Rz(math.pi).on(qs[0]), state)
        probs = np.abs(state.state_vector()) ** 2
        np.testing.assert_allclose(probs, [0.5, 0.5], atol=1e-9)

    def test_t_gate_branches_stochastically(self):
        """T on |+>: branches give |+> or S|+>, never anything else."""
        qs = cirq.LineQubit.range(1)
        seen = set()
        for seed in range(50):
            state = StabilizerChFormSimulationState(qs, seed=seed)
            act_on_near_clifford(cirq.H(qs[0]), state)
            act_on_near_clifford(cirq.T(qs[0]), state)
            vec = np.round(state.state_vector(), 6)
            seen.add(tuple(vec.tolist()))
        assert len(seen) == 2  # exactly the I and S branches

    def test_branch_frequencies_follow_weights(self):
        theta = math.pi / 4  # T gate
        c_i, c_s = rotation_branch_weights(theta)
        expected_s = c_s / (c_i + c_s)
        qs = cirq.LineQubit.range(1)
        s_count = 0
        trials = 2000
        rng = np.random.default_rng(0)
        for _ in range(trials):
            state = StabilizerChFormSimulationState(
                qs, seed=int(rng.integers(2**32))
            )
            act_on_near_clifford(cirq.H(qs[0]), state)
            act_on_near_clifford(cirq.T(qs[0]), state)
            # S branch has imaginary amplitude on |1>
            if abs(state.state_vector()[1].imag) > 1e-9:
                s_count += 1
        assert abs(s_count / trials - expected_s) < 0.04

    def test_measurement_op_collapses(self):
        qs = cirq.LineQubit.range(1)
        state = StabilizerChFormSimulationState(qs, seed=0)
        act_on_near_clifford(cirq.H(qs[0]), state)
        act_on_near_clifford(cirq.measure(qs[0], key="m"), state)
        probs = np.abs(state.state_vector()) ** 2
        assert max(probs) == pytest.approx(1.0, abs=1e-9)

    def test_rejects_non_rz_non_clifford(self):
        qs = cirq.LineQubit.range(3)
        state = StabilizerChFormSimulationState(qs, seed=0)
        with pytest.raises(ValueError, match="non-Clifford"):
            act_on_near_clifford(cirq.CCX(*qs), state)

    def test_stochastic_flag_set(self):
        assert getattr(act_on_near_clifford, "_bgls_stochastic_") is True


class TestEndToEndOverlap:
    def _overlap(self, circuit, qubits, reps=1500, seed=0):
        probs = np.abs(
            circuit.without_measurements().final_state_vector(qubit_order=qubits)
        ) ** 2
        sim = bgls.Simulator(
            StabilizerChFormSimulationState(qubits),
            bgls.act_on_near_clifford,
            born.compute_probability_stabilizer_state,
            seed=seed,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        return fractional_overlap(
            empirical_distribution(bits, len(qubits)), probs
        )

    def test_pure_clifford_overlap_near_one(self):
        qs = cirq.LineQubit.range(4)
        circuit = cirq.random_clifford_circuit(qs, 15, random_state=3)
        assert self._overlap(circuit, qs) > 0.93

    def test_t_gates_lower_overlap(self):
        """Fig. 4a behaviour: non-Clifford circuits lag pure Clifford."""
        qs = cirq.LineQubit.range(4)
        clifford_t = cirq.random_clifford_t_circuit(
            qs, 15, t_density=0.25, random_state=3
        )
        n_t = cirq.count_gate(clifford_t, cirq.T)
        assert n_t >= 3
        as_clifford = cirq.substitute_gate(clifford_t, cirq.T, cirq.S)
        overlap_t = self._overlap(clifford_t, qs)
        overlap_s = self._overlap(as_clifford, qs)
        assert overlap_t < overlap_s

    def test_more_t_gates_monotone_trend(self):
        """Fig. 5 behaviour: overlap decreases as T count grows (on average)."""
        qs = cirq.LineQubit.range(4)
        base = cirq.random_clifford_circuit(qs, 25, random_state=11)
        overlaps = []
        for n_t in (0, 4, 12):
            circ = cirq.substitute_clifford_with_t(base, n_t, random_state=0)
            overlaps.append(self._overlap(circ, qs, seed=n_t))
        assert overlaps[0] > overlaps[2]
