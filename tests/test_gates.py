"""Tests for the gate algebra: unitaries, exponents, stabilizer sequences."""

import cmath
import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import (
    CCX,
    CCZ,
    CNOT,
    CSWAP,
    CZ,
    H,
    I,
    ISWAP,
    S,
    S_DAG,
    SWAP,
    T,
    T_DAG,
    X,
    Y,
    Z,
    ControlledGate,
    MatrixGate,
    MeasurementGate,
    ParamResolver,
    Rx,
    Ry,
    Rz,
    Symbol,
)
from repro.protocols import unitary

_X = np.array([[0, 1], [1, 0]])
_Y = np.array([[0, -1j], [1j, 0]])
_Z = np.diag([1, -1])
_H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


def assert_allclose_up_to_global_phase(a, b, atol=1e-9):
    inner = np.vdot(a.ravel(), b.ravel())
    assert abs(inner) > atol, "matrices are orthogonal"
    phase = inner / abs(inner)
    np.testing.assert_allclose(a * phase, b, atol=atol)


class TestFixedUnitaries:
    @pytest.mark.parametrize(
        "gate,expected",
        [
            (X, _X),
            (Y, _Y),
            (Z, _Z),
            (H, _H),
            (S, np.diag([1, 1j])),
            (S_DAG, np.diag([1, -1j])),
            (T, np.diag([1, cmath.exp(1j * math.pi / 4)])),
            (T_DAG, np.diag([1, cmath.exp(-1j * math.pi / 4)])),
        ],
    )
    def test_single_qubit(self, gate, expected):
        np.testing.assert_allclose(unitary(gate), expected, atol=1e-12)

    def test_cnot(self):
        expected = np.eye(4)[[0, 1, 3, 2]]
        np.testing.assert_allclose(unitary(CNOT), expected, atol=1e-12)

    def test_cz(self):
        np.testing.assert_allclose(unitary(CZ), np.diag([1, 1, 1, -1]), atol=1e-12)

    def test_swap(self):
        expected = np.eye(4)[[0, 2, 1, 3]]
        np.testing.assert_allclose(unitary(SWAP), expected, atol=1e-12)

    def test_iswap(self):
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
        )
        np.testing.assert_allclose(unitary(ISWAP), expected, atol=1e-12)

    def test_toffoli(self):
        u = unitary(CCX)
        expected = np.eye(8)
        expected[[6, 7]] = expected[[7, 6]]
        np.testing.assert_allclose(u, expected, atol=1e-12)

    def test_ccz(self):
        np.testing.assert_allclose(
            unitary(CCZ), np.diag([1, 1, 1, 1, 1, 1, 1, -1]), atol=1e-12
        )

    def test_fredkin(self):
        u = unitary(CSWAP)
        expected = np.eye(8)
        expected[[5, 6]] = expected[[6, 5]]
        np.testing.assert_allclose(u, expected, atol=1e-12)

    def test_identity(self):
        np.testing.assert_allclose(unitary(I), np.eye(2), atol=1e-12)


class TestExponents:
    @pytest.mark.parametrize("gate", [X, Y, Z, H, CNOT, CZ, SWAP])
    def test_square_roots(self, gate):
        root = gate**0.5
        u = unitary(root)
        np.testing.assert_allclose(u @ u, unitary(gate), atol=1e-9)

    @pytest.mark.parametrize("gate", [X, Y, Z, H, CNOT, CZ, SWAP, ISWAP])
    def test_inverse(self, gate):
        inv = gate**-1
        u = unitary(gate) @ unitary(inv)
        np.testing.assert_allclose(u, np.eye(u.shape[0]), atol=1e-9)

    def test_iswap_squared_is_zz(self):
        np.testing.assert_allclose(
            unitary(ISWAP) @ unitary(ISWAP), np.diag([1, -1, -1, 1]), atol=1e-9
        )

    def test_s_is_z_half(self):
        assert S == Z**0.5
        assert T == Z**0.25

    @pytest.mark.parametrize("t", [0.1, 0.5, 1.0, 1.7, -0.3])
    def test_all_pow_gates_unitary(self, t):
        for gate in [X**t, Y**t, Z**t, H**t, CNOT**t, CZ**t, SWAP**t, CCX**t]:
            u = unitary(gate)
            np.testing.assert_allclose(
                u @ u.conj().T, np.eye(u.shape[0]), atol=1e-9
            )


class TestRotations:
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 2.5])
    def test_rz_matrix(self, theta):
        expected = np.diag(
            [cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)]
        )
        np.testing.assert_allclose(unitary(Rz(theta)), expected, atol=1e-9)

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, 2.5])
    def test_rx_matrix(self, theta):
        from scipy.linalg import expm

        expected = expm(-1j * theta / 2 * _X)
        np.testing.assert_allclose(unitary(Rx(theta)), expected, atol=1e-9)

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, 2.5])
    def test_ry_matrix(self, theta):
        from scipy.linalg import expm

        expected = expm(-1j * theta / 2 * _Y)
        np.testing.assert_allclose(unitary(Ry(theta)), expected, atol=1e-9)

    def test_t_equals_rz_up_to_phase(self):
        assert_allclose_up_to_global_phase(
            unitary(T), unitary(Rz(math.pi / 4))
        )


class TestParameterization:
    def test_parameterized_gate_has_no_unitary(self):
        gate = cirq.ZPowGate(exponent=Symbol("t"))
        assert gate._unitary_() is None
        assert gate._is_parameterized_()

    def test_resolution(self):
        gate = cirq.ZPowGate(exponent=Symbol("t"))
        resolved = gate._resolve_parameters_(ParamResolver({"t": 0.5}))
        np.testing.assert_allclose(unitary(resolved), np.diag([1, 1j]), atol=1e-9)

    def test_parametric_rz(self):
        gate = Rz(Symbol("theta"))
        resolved = gate._resolve_parameters_(ParamResolver({"theta": math.pi}))
        np.testing.assert_allclose(
            unitary(resolved), np.diag([-1j, 1j]), atol=1e-9
        )

    def test_pow_of_parameterized(self):
        gate = cirq.ZPowGate(exponent=Symbol("t")) ** 2
        resolved = gate._resolve_parameters_(ParamResolver({"t": 0.25}))
        np.testing.assert_allclose(unitary(resolved), np.diag([1, 1j]), atol=1e-9)


class TestStabilizerSequences:
    """Every declared stabilizer sequence must reproduce the gate's unitary."""

    _PRIM = {
        "H": _H,
        "S": np.diag([1, 1j]),
        "SDG": np.diag([1, -1j]),
        "X": _X,
        "Y": _Y,
        "Z": _Z,
    }

    def _sequence_unitary(self, gate):
        seq = gate._stabilizer_sequence_()
        assert seq is not None
        phase, prims = seq
        n = gate.num_qubits()
        total = np.eye(2**n, dtype=complex)
        for name, axes in prims:
            if name in self._PRIM:
                op = self._embed_1q(self._PRIM[name], axes[0], n)
            elif name == "CX":
                op = self._embed_cx(axes[0], axes[1], n)
            elif name == "CZ":
                op = self._embed_cz(axes[0], axes[1], n)
            else:
                raise AssertionError(name)
            total = op @ total
        return phase * total

    @staticmethod
    def _embed_1q(u, axis, n):
        mats = [np.eye(2)] * n
        mats[axis] = u
        out = np.array([[1.0]])
        for m in mats:
            out = np.kron(out, m)
        return out

    @staticmethod
    def _embed_cx(c, t, n):
        dim = 2**n
        out = np.zeros((dim, dim))
        for i in range(dim):
            bits = [(i >> (n - 1 - j)) & 1 for j in range(n)]
            if bits[c]:
                bits[t] ^= 1
            j = int("".join(map(str, bits)), 2)
            out[j, i] = 1.0
        return out

    @staticmethod
    def _embed_cz(c, t, n):
        dim = 2**n
        diag = np.ones(dim)
        for i in range(dim):
            if (i >> (n - 1 - c)) & 1 and (i >> (n - 1 - t)) & 1:
                diag[i] = -1.0
        return np.diag(diag)

    @pytest.mark.parametrize(
        "gate",
        [X, Y, Z, H, S, S_DAG, CNOT, CZ, SWAP, ISWAP, I,
         X**1.5, Y**0.5, Z**1.5, ISWAP**2, ISWAP**3,
         Rz(math.pi / 2), Rx(math.pi), cirq.XPowGate(exponent=0.5, global_shift=0.3)],
    )
    def test_sequence_matches_unitary(self, gate):
        np.testing.assert_allclose(
            self._sequence_unitary(gate), unitary(gate), atol=1e-9
        )

    @pytest.mark.parametrize("gate", [T, T_DAG, Rz(0.3), CCX, CZ**0.5, H**0.5])
    def test_non_clifford_has_no_sequence(self, gate):
        assert gate._stabilizer_sequence_() is None


class TestMatrixGate:
    def test_roundtrip(self):
        u = unitary(H)
        gate = MatrixGate(u)
        np.testing.assert_allclose(unitary(gate), u)
        assert gate.num_qubits() == 1

    def test_two_qubit(self):
        gate = MatrixGate(unitary(CNOT))
        assert gate.num_qubits() == 2

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixGate(np.ones((2, 3)))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            MatrixGate(np.eye(3))

    def test_inverse(self):
        gate = MatrixGate(unitary(S)) ** -1
        np.testing.assert_allclose(unitary(gate), np.diag([1, -1j]), atol=1e-12)

    def test_equality(self):
        assert MatrixGate(np.eye(2)) == MatrixGate(np.eye(2))
        assert MatrixGate(np.eye(2)) != MatrixGate(unitary(X))


class TestControlledGate:
    def test_controlled_x_is_cnot(self):
        np.testing.assert_allclose(
            unitary(ControlledGate(X)), unitary(CNOT), atol=1e-12
        )

    def test_controlled_z(self):
        np.testing.assert_allclose(
            unitary(ControlledGate(Z)), unitary(CZ), atol=1e-12
        )

    def test_double_controlled_x_is_toffoli(self):
        np.testing.assert_allclose(
            unitary(ControlledGate(X, num_controls=2)), unitary(CCX), atol=1e-12
        )

    def test_num_qubits(self):
        assert ControlledGate(SWAP).num_qubits() == 3


class TestMeasurementGate:
    def test_key_and_arity(self):
        gate = MeasurementGate(3, key="result")
        assert gate.num_qubits() == 3
        assert gate.key == "result"

    def test_measure_helper_default_key(self):
        qs = cirq.LineQubit.range(2)
        op = cirq.measure(*qs)
        assert op.measurement_key == "q(0),q(1)"

    def test_measure_requires_qubits(self):
        with pytest.raises(ValueError):
            cirq.measure()

    def test_no_unitary(self):
        assert MeasurementGate(1, key="m")._unitary_() is None


class TestGateOnQubits:
    def test_on_and_call_equivalent(self):
        q = cirq.LineQubit.range(2)
        assert H.on(q[0]) == H(q[0])
        assert CNOT.on(*q) == CNOT(q[0], q[1])

    def test_wrong_arity_raises(self):
        q = cirq.LineQubit.range(3)
        with pytest.raises(ValueError):
            CNOT.on(q[0])
        with pytest.raises(ValueError):
            H.on(q[0], q[1])

    def test_duplicate_qubits_raise(self):
        q = cirq.LineQubit(0)
        with pytest.raises(ValueError):
            CNOT.on(q, q)
