"""Tests for the Program layer: cache keying, specialization, sweeps."""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler.plan import FusedOpRecord, compile_plan
from repro.sampler.program import (
    Program,
    circuit_fingerprint,
    clear_program_cache,
    compiled_program,
    program_cache_info,
)
from repro.states import (
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_program_cache()
    yield
    clear_program_cache()


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(3)


def sv_simulator(qubits, seed=0, **kw):
    return bgls.Simulator(
        StateVectorSimulationState(qubits),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
        **kw,
    )


def parameterized_circuit(qubits):
    theta = cirq.Symbol("theta")
    return cirq.Circuit(
        cirq.H(qubits[0]),
        cirq.CNOT(qubits[0], qubits[1]),
        cirq.Rx(theta).on(qubits[2]),
        cirq.measure(*qubits, key="m"),
    )


class TestFingerprint:
    def test_equal_circuits_fingerprint_equal(self, qubits):
        a = cirq.Circuit(cirq.H(qubits[0]), cirq.CNOT(qubits[0], qubits[1]))
        b = cirq.Circuit(cirq.H(qubits[0]), cirq.CNOT(qubits[0], qubits[1]))
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_mutation_changes_fingerprint(self, qubits):
        a = cirq.Circuit(cirq.H(qubits[0]))
        before = circuit_fingerprint(a)
        a.append(cirq.X(qubits[1]))
        assert circuit_fingerprint(a) != before

    def test_near_equal_matrix_gates_do_not_alias(self, qubits):
        """Regression: MatrixGate equality is allclose-based, but the
        cache must distinguish finite-difference-sized perturbations."""
        base = np.array([[1, 0], [0, np.exp(1j * 0.5)]])
        bumped = np.array([[1, 0], [0, np.exp(1j * (0.5 + 1e-7))]])
        a = cirq.Circuit(cirq.MatrixGate(base).on(qubits[0]))
        b = cirq.Circuit(cirq.MatrixGate(bumped).on(qubits[0]))
        assert circuit_fingerprint(a) != circuit_fingerprint(b)
        sim = sv_simulator(qubits)
        prog_a, prog_b = sim.compile(a), sim.compile(b)
        assert prog_a is not prog_b
        assert program_cache_info()["misses"] == 2
        # Exact re-builds still hit.
        assert sim.compile(
            cirq.Circuit(cirq.MatrixGate(base.copy()).on(qubits[0]))
        ) is prog_a

    def test_gate_value_matters(self, qubits):
        a = cirq.Circuit(cirq.Rx(0.3).on(qubits[0]))
        b = cirq.Circuit(cirq.Rx(0.4).on(qubits[0]))
        assert circuit_fingerprint(a) != circuit_fingerprint(b)


class TestCacheKeying:
    def test_identical_compile_hits(self, qubits):
        sim = sv_simulator(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        p1 = sim.compile(circuit)
        p2 = sim.compile(circuit)
        assert p1 is p2
        info = program_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_equal_but_separately_built_circuit_hits(self, qubits):
        sim = sv_simulator(qubits)
        make = lambda: cirq.Circuit(
            cirq.H(qubits[0]), cirq.measure(*qubits, key="m")
        )
        assert sim.compile(make()) is sim.compile(make())

    def test_mutated_circuit_misses(self, qubits):
        sim = sv_simulator(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        p1 = sim.compile(circuit)
        circuit.append(cirq.X(qubits[1]))
        p2 = sim.compile(circuit)
        assert p1 is not p2
        assert program_cache_info()["misses"] == 2

    def test_fuse_flag_misses(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        fused = sv_simulator(qubits).compile(circuit)
        unfused = sv_simulator(qubits, fuse_moments=False).compile(circuit)
        assert fused is not unfused
        assert program_cache_info()["misses"] == 2

    def test_backend_type_misses(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        sv = sv_simulator(qubits).compile(circuit)
        ch = bgls.Simulator(
            StabilizerChFormSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
        ).compile(circuit)
        assert sv is not ch
        assert sv.fast_unitary and not sv.fast_stab
        assert ch.fast_stab and not ch.fast_unitary
        assert program_cache_info()["misses"] == 2

    def test_apply_op_misses(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        p1 = sv_simulator(qubits).compile(circuit)

        def custom(op, state):  # pragma: no cover - never called
            act_on(op, state)

        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            custom,
            born.compute_probability_state_vector,
        )
        assert sim.compile(circuit) is not p1


class TestSpecialization:
    def test_param_free_program_has_single_cached_plan(self, qubits):
        sim = sv_simulator(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        program = sim.compile(circuit)
        assert not program.is_parameterized
        assert program.specialize(None) is program.specialize({"x": 1.0})

    def test_param_slots_counted(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        assert program.is_parameterized
        assert program.param_slot_count == 1
        assert program.shared_record_count == 3  # H, CNOT, measure

    def test_shared_records_reused_across_points(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        plan_a = program.specialize({"theta": 0.1})
        plan_b = program.specialize({"theta": 0.2})
        # The H record object is literally shared; the Rx record is not.
        shared_a = [r for r in plan_a.records if r.support == (0,)]
        shared_b = [r for r in plan_b.records if r.support == (0,)]
        assert shared_a[0] is shared_b[0]
        rx_a = [r for r in plan_a.records if r.support == (2,)]
        rx_b = [r for r in plan_b.records if r.support == (2,)]
        assert rx_a[0] is not rx_b[0]
        assert not np.allclose(rx_a[0].unitary, rx_b[0].unitary)

    def test_specialized_plan_matches_direct_compilation(self, qubits):
        """Record stream identical to resolving then compiling."""
        circuit = parameterized_circuit(qubits)
        sim = sv_simulator(qubits)
        program = sim.compile(circuit)
        for theta in (0.0, 0.37, 1.0):
            resolver = cirq.ParamResolver({"theta": theta})
            via_program = program.specialize(resolver)
            direct = compile_plan(
                circuit.resolve_parameters(resolver),
                sim.initial_state,
                sim.apply_op,
            )
            assert len(via_program.records) == len(direct.records)
            for rec_p, rec_d in zip(via_program.records, direct.records):
                assert type(rec_p) is type(rec_d)
                assert rec_p.support == rec_d.support
                u_p = getattr(rec_p, "unitary", None)
                u_d = getattr(rec_d, "unitary", None)
                if u_p is not None or u_d is not None:
                    np.testing.assert_allclose(u_p, u_d, atol=1e-12)
            assert via_program.needs_trajectories == direct.needs_trajectories
            assert via_program.key_axes == direct.key_axes

    def test_fusion_inside_parameterized_moment(self):
        """Resolved-Clifford param gates fuse exactly like the direct path."""
        qs = cirq.LineQubit.range(3)
        theta = cirq.Symbol("t")
        circuit = cirq.Circuit(
            [cirq.H(qs[0]), cirq.S(qs[1]), cirq.Rz(theta).on(qs[2])]
        )
        sim = sv_simulator(qs)
        program = sim.compile(circuit)
        # theta = pi/2 resolves Rz to a Clifford (S up to phase) -> fused.
        plan = program.specialize({"t": np.pi / 2})
        assert len(plan.records) == 1
        assert type(plan.records[0]) is FusedOpRecord
        # A non-Clifford angle stays unfused next to the fused pair.
        plan2 = program.specialize({"t": 0.3})
        assert len(plan2.records) == 2
        assert type(plan2.records[0]) is FusedOpRecord
        assert plan2.records[1].support == (2,)

    def test_unresolved_parameters_raise(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        with pytest.raises(ValueError, match="unresolved parameters"):
            program.specialize(None)

    def test_validation_errors_surface_at_compile(self, qubits):
        sim = sv_simulator(qubits)
        stranger = cirq.LineQubit(99)
        with pytest.raises(ValueError, match="not in state register"):
            sim.compile(cirq.Circuit(cirq.X(stranger)))
        with pytest.raises(ValueError, match="Duplicate measurement key"):
            sim.compile(
                cirq.Circuit(
                    cirq.measure(qubits[0], key="k"),
                    cirq.measure(qubits[1], key="k"),
                )
            )


class TestRunSweep:
    def test_twenty_point_sweep_compiles_once(self, qubits):
        """Acceptance criterion: >= 20 resolver points, one compilation."""
        sim = sv_simulator(qubits, seed=3)
        circuit = parameterized_circuit(qubits)
        params = [{"theta": 0.1 * i} for i in range(25)]
        results = sim.run_sweep(circuit, params, repetitions=10)
        assert len(results) == 25
        info = program_cache_info()
        assert info["misses"] == 1 and info["size"] == 1
        program = sim.compile(circuit)  # one more hit, no recompilation
        assert program.specializations == 25
        assert program_cache_info()["hits"] == 1

    def test_sweep_is_bit_for_bit_reproducible(self, qubits):
        """Regression: per-point seeds derive from SeedSequence([seed, i])."""
        circuit = parameterized_circuit(qubits)
        params = [{"theta": 0.2 * i} for i in range(6)]
        runs = []
        for _ in range(2):
            sim = sv_simulator(qubits, seed=123)
            results = sim.run_sweep(circuit, params, repetitions=40)
            runs.append([r.measurements["m"].copy() for r in results])
        for a, b in zip(*runs):
            np.testing.assert_array_equal(a, b)

    def test_point_stream_independent_of_sweep_length(self, qubits):
        """Point i's samples do not depend on how many points follow."""
        circuit = parameterized_circuit(qubits)
        params = [{"theta": 0.2 * i} for i in range(6)]
        full = sv_simulator(qubits, seed=9).run_sweep(
            circuit, params, repetitions=30
        )
        prefix = sv_simulator(qubits, seed=9).run_sweep(
            circuit, params[:2], repetitions=30
        )
        for a, b in zip(prefix, full[:2]):
            np.testing.assert_array_equal(
                a.measurements["m"], b.measurements["m"]
            )

    def test_different_seeds_differ(self, qubits):
        circuit = parameterized_circuit(qubits)
        params = [{"theta": 0.7}]
        a = sv_simulator(qubits, seed=0).run_sweep(circuit, params, repetitions=50)
        b = sv_simulator(qubits, seed=1).run_sweep(circuit, params, repetitions=50)
        assert not np.array_equal(
            a[0].measurements["m"], b[0].measurements["m"]
        )

    def test_sweep_statistics_match_physics(self, qubits):
        theta = cirq.Symbol("theta")
        circuit = cirq.Circuit(
            cirq.Rx(theta).on(qubits[0]), cirq.measure(qubits[0], key="m")
        )
        sim = sv_simulator(qubits, seed=2)
        results = sim.run_sweep(
            circuit, [{"theta": 0.0}, {"theta": np.pi}], repetitions=50
        )
        assert results[0].histogram("m") == {0: 50}
        assert results[1].histogram("m") == {1: 50}

    def test_sample_bitstrings_sweep_shapes(self, qubits):
        sim = sv_simulator(qubits, seed=4)
        circuit = parameterized_circuit(qubits)
        sweeps = sim.sample_bitstrings_sweep(
            circuit, [{"theta": 0.1}, {"theta": 0.9}], repetitions=17
        )
        assert len(sweeps) == 2
        for bits in sweeps:
            assert bits.shape == (17, 3)


class TestSpecializeMemoization:
    """Per-resolver plan memoization: bounded LRU, graceful fallbacks."""

    def test_same_resolver_returns_identical_plan_object(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        a = program.specialize({"theta": 0.5})
        b = program.specialize({"theta": 0.5})
        assert a is b
        info = program.specialize_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1 and info["size"] == 1

    def test_dict_and_resolver_share_one_entry(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        via_dict = program.specialize({"theta": 0.25})
        via_resolver = program.specialize(cirq.ParamResolver({"theta": 0.25}))
        assert via_dict is via_resolver

    def test_lru_eviction_is_bounded(self, qubits, monkeypatch):
        from repro.sampler import program as program_module

        monkeypatch.setattr(program_module, "_SPECIALIZE_CACHE_MAX", 2)
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        first = program.specialize({"theta": 0.1})
        program.specialize({"theta": 0.2})
        program.specialize({"theta": 0.3})  # evicts theta=0.1
        info = program.specialize_cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 1
        # The evicted entry rebuilds (a new object), recently-used survive.
        assert program.specialize({"theta": 0.3}) is not None
        assert program.specialize_cache_info()["hits"] == 1
        rebuilt = program.specialize({"theta": 0.1})
        assert rebuilt is not first

    def test_lru_recency_order(self, qubits, monkeypatch):
        from repro.sampler import program as program_module

        monkeypatch.setattr(program_module, "_SPECIALIZE_CACHE_MAX", 2)
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        a = program.specialize({"theta": 0.1})
        program.specialize({"theta": 0.2})
        a_again = program.specialize({"theta": 0.1})  # refresh a
        program.specialize({"theta": 0.3})  # evicts 0.2, not 0.1
        assert a_again is a
        assert program.specialize({"theta": 0.1}) is a

    def test_custom_resolver_object_falls_back_uncached(self, qubits):
        """Resolvers without inspectable assignments stay correct, uncached."""

        class OpaqueResolver:
            def value_of(self, value):
                return value.value(0.5)

        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        a = program.specialize(OpaqueResolver())
        b = program.specialize(OpaqueResolver())
        assert a is not b
        info = program.specialize_cache_info()
        assert info["uncachable"] == 2 and info["size"] == 0
        reference = program.specialize({"theta": 0.5})
        rx_a = [r for r in a.records if r.support == (2,)][0]
        rx_ref = [r for r in reference.records if r.support == (2,)][0]
        np.testing.assert_allclose(rx_a.unitary, rx_ref.unitary, atol=1e-12)

    def test_array_valued_assignments_fall_back_uncached(self, qubits):
        """Unhashable assignment values cannot key the cache; still correct."""

        class VectorResolver(cirq.ParamResolver):
            def __init__(self, values):
                self._assignments = {"theta": values}  # ndarray: unhashable

            def value_of(self, value):
                return value.value(float(self._assignments["theta"][0]))

        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        plan = program.specialize(VectorResolver(np.array([0.3, 9.9])))
        assert program.specialize_cache_info()["uncachable"] == 1
        reference = program.specialize({"theta": 0.3})
        rx = [r for r in plan.records if r.support == (2,)][0]
        rx_ref = [r for r in reference.records if r.support == (2,)][0]
        np.testing.assert_allclose(rx.unitary, rx_ref.unitary, atol=1e-12)

    def test_counters_exposed_and_clearable(self, qubits):
        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        program.specialize({"theta": 0.1})
        program.specialize({"theta": 0.1})
        info = program.specialize_cache_info()
        assert set(info) == {"hits", "misses", "evictions", "uncachable", "size"}
        program.clear_specialize_cache()
        cleared = program.specialize_cache_info()
        assert cleared == {
            "hits": 0, "misses": 0, "evictions": 0, "uncachable": 0, "size": 0,
        }

    def test_param_free_program_bypasses_resolver_cache(self, qubits):
        sim = sv_simulator(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        program = sim.compile(circuit)
        assert program.specialize(None) is program.specialize({"x": 1.0})
        assert program.specialize_cache_info()["size"] == 0

    def test_pickled_program_resets_cache(self, qubits):
        """Programs ship to pool workers without their cached plans."""
        import pickle

        program = sv_simulator(qubits).compile(parameterized_circuit(qubits))
        program.specialize({"theta": 0.4})
        clone = pickle.loads(pickle.dumps(program))
        assert clone.specialize_cache_info()["size"] == 0
        plan = clone.specialize({"theta": 0.4})
        reference = program.specialize({"theta": 0.4})
        assert len(plan.records) == len(reference.records)

    def test_sweep_revisit_hits_cache(self, qubits):
        """Grid-refinement pattern: revisited points skip the rebuild."""
        sim = sv_simulator(qubits, seed=3)
        circuit = parameterized_circuit(qubits)
        params = [{"theta": 0.1}, {"theta": 0.2}, {"theta": 0.1}]
        sim.run_sweep(circuit, params, repetitions=5)
        info = sim.compile(circuit).specialize_cache_info()
        assert info["misses"] == 2 and info["hits"] == 1


class TestRunBatch:
    def test_batch_returns_one_result_per_circuit(self, qubits):
        sim = sv_simulator(qubits, seed=5)
        c1 = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(qubits[0], key="a"))
        c2 = cirq.Circuit(cirq.X(qubits[1]), cirq.measure(qubits[1], key="b"))
        results = sim.run_batch([c1, c2], repetitions=20)
        assert len(results) == 2
        assert results[0].measurements["a"].shape == (20, 1)
        assert results[1].histogram("b") == {1: 20}

    def test_batch_with_resolvers(self, qubits):
        sim = sv_simulator(qubits, seed=6)
        circuit = parameterized_circuit(qubits)
        results = sim.run_batch(
            [circuit, circuit],
            params=[{"theta": 0.0}, {"theta": np.pi}],
            repetitions=30,
        )
        assert results[0].measurements["m"][:, 2].sum() == 0
        assert results[1].measurements["m"][:, 2].sum() == 30

    def test_repeated_circuit_compiles_once(self, qubits):
        sim = sv_simulator(qubits, seed=7)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        sim.run_batch([circuit, circuit, circuit], repetitions=5)
        info = program_cache_info()
        assert info["misses"] == 1 and info["hits"] == 2

    def test_mismatched_params_length_raises(self, qubits):
        sim = sv_simulator(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        with pytest.raises(ValueError, match="resolvers"):
            sim.run_batch([circuit], params=[None, None])

    def test_batch_reproducible(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        a = sv_simulator(qubits, seed=11).run_batch([circuit, circuit], repetitions=25)
        b = sv_simulator(qubits, seed=11).run_batch([circuit, circuit], repetitions=25)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(
                ra.measurements["m"], rb.measurements["m"]
            )


class TestProgramDirect:
    def test_program_usable_without_simulator(self, qubits):
        state = StateVectorSimulationState(qubits)
        program = Program(
            parameterized_circuit(qubits), state, act_on
        )
        plan = program.specialize({"theta": 0.5})
        assert plan.num_qubits == 3
        assert not plan.needs_trajectories

    def test_compiled_program_helper_caches(self, qubits):
        state = StateVectorSimulationState(qubits)
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        p1 = compiled_program(circuit, state, act_on)
        p2 = compiled_program(circuit, state, act_on)
        assert p1 is p2
