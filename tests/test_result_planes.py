"""Shared-memory result planes: parity, lifecycle, and zero-copy suite.

The contracts pinned here (this PR's acceptance criteria):

* **Transport parity** — shm-pooled ``run_sweep``/``run_batch`` are
  bit-for-bit identical to the serial executor-free path on all five
  shipped backends, under every ``scope`` mode, under adaptive split
  schedules, and identical to the pickled-result fallback transport.
* **Streaming parity** — ``run_sweep_iter``/``run_batch_iter`` yield
  exactly the list APIs' per-point Results, in order.
* **Segment lifecycle** — no shared-memory segment survives a completed
  run, a poisoned pool, or an abandoned (mid-iteration ``close()``)
  streaming iterator; the parent allocates and the parent unlinks.
* **Zero-copy Results** — plane-backed ``Result``s adopt the read-only
  views without copying, every helper works on them, and the views
  outlive the segment's unlink.

The pooled start method comes from ``BGLS_POOL_START_METHODS``
(comma-separated; default ``fork``) so CI can run the whole suite under
``forkserver`` and ``spawn`` without duplicating tests.
"""

import gc
import multiprocessing
import os

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.mps import MPSState
from repro.sampler import (
    AdaptiveScheduler,
    PoolManager,
    ProcessPoolExecutor,
    SerialExecutor,
)
from repro.sampler import result_planes
from repro.sampler.result_planes import (
    PointPlanes,
    live_segment_names,
    plane_layout,
    shm_available,
    write_chunk_to_slot,
)
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def pool_start_methods():
    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return methods or [available[0]]


START_METHODS = pool_start_methods()

N = 3
QUBITS = cirq.LineQubit.range(N)
THETA = cirq.Symbol("theta")


def parameterized_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.Rx(THETA).on(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


def clifford_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.CNOT(QUBITS[1], QUBITS[2]),
        cirq.S(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


PARAM_POINTS = [{"theta": 0.3 * i} for i in range(4)]
CLIFFORD_POINTS = [None] * 4

BACKENDS = [
    pytest.param(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        parameterized_circuit,
        PARAM_POINTS,
        id="state_vector",
    ),
    pytest.param(
        lambda: DensityMatrixSimulationState(QUBITS),
        born.compute_probability_density_matrix,
        parameterized_circuit,
        PARAM_POINTS,
        id="density_matrix",
    ),
    pytest.param(
        lambda: StabilizerChFormSimulationState(QUBITS),
        born.compute_probability_stabilizer_state,
        clifford_circuit,
        CLIFFORD_POINTS,
        id="stabilizer_ch_form",
    ),
    pytest.param(
        lambda: CliffordTableauSimulationState(QUBITS),
        born.compute_probability_tableau,
        clifford_circuit,
        CLIFFORD_POINTS,
        id="clifford_tableau",
    ),
    pytest.param(
        lambda: MPSState(QUBITS),
        born.compute_probability_mps,
        parameterized_circuit,
        PARAM_POINTS,
        id="mps",
    ),
]


def make_sim(make_state, prob_fn, seed, executor=None):
    return bgls.Simulator(
        make_state(), bgls.act_on, prob_fn, seed=seed, executor=executor
    )


def sv_sim(seed, executor=None):
    return make_sim(
        lambda: StateVectorSimulationState(QUBITS),
        born.compute_probability_state_vector,
        seed,
        executor,
    )


def assert_sweeps_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left == right


@pytest.fixture
def manager():
    with PoolManager() as mgr:
        yield mgr


def pool_exec(manager, transport="shm", **kw):
    kw.setdefault("num_workers", 2)
    kw.setdefault("start_method", START_METHODS[0])
    return ProcessPoolExecutor(
        pool_manager=manager, result_transport=transport, **kw
    )


# ----------------------------------------------------------------------
# plane layout and in-process round trip (no pool involved)
# ----------------------------------------------------------------------

class _FakePlan:
    def __init__(self, key_axes, num_qubits):
        self.key_axes = key_axes
        self.num_qubits = num_qubits


class TestPlaneLayout:
    def test_layout_is_bits_then_keys_in_order(self):
        key_axes = {"b": (0, 2), "a": (1,)}
        specs, nbytes = plane_layout(key_axes, 3, 10)
        assert [s[0] for s in specs] == [None, "b", "a"]
        assert specs[0][1:] == (0, (10, 3))
        assert specs[1][1:] == (30, (10, 2))
        assert specs[2][1:] == (50, (10, 1))
        assert nbytes == 60

    def test_round_trip_through_slots(self):
        plan = _FakePlan({"m": (0, 1)}, 2)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(7, 2)).astype(np.int8)
        planes = PointPlanes(plan.key_axes, plan.num_qubits, 7)
        assert planes.name in live_segment_names()
        # Two chunks with different row bands, written out of order.
        for offset, size in ((4, 3), (0, 4)):
            rows = slice(offset, offset + size)
            write_chunk_to_slot(
                plan,
                planes.slot(offset),
                {"m": bits[rows]},
                bits[rows],
            )
        records, all_bits = planes.views()
        assert planes.name not in live_segment_names()
        np.testing.assert_array_equal(all_bits, bits)
        np.testing.assert_array_equal(records["m"], bits)
        assert not all_bits.flags.writeable
        assert not records["m"].flags.writeable

    def test_release_is_idempotent_and_views_safe_after(self):
        planes = PointPlanes({"m": (0,)}, 1, 3)
        planes.release()
        assert live_segment_names() == []
        planes.release()  # no-op

    def test_views_then_release_is_noop(self):
        planes = PointPlanes({"m": (0,)}, 1, 3)
        records, bits = planes.views()
        planes.release()
        assert bits.shape == (3, 1)
        assert int(bits.sum()) == 0  # still readable


# ----------------------------------------------------------------------
# bit-for-bit parity: shm pooled vs serial vs pickled fallback
# ----------------------------------------------------------------------

class TestTransportParity:
    @pytest.mark.parametrize(
        "make_state,prob_fn,circuit_factory,points", BACKENDS
    )
    @pytest.mark.parametrize("scope", ["auto", "points"])
    def test_sweep_matches_serial_on_all_backends(
        self, manager, make_state, prob_fn, circuit_factory, points, scope
    ):
        circuit = circuit_factory()
        serial = make_sim(make_state, prob_fn, seed=11).run_sweep(
            circuit, points, repetitions=32, scope=scope
        )
        pooled = make_sim(
            make_state, prob_fn, seed=11, executor=pool_exec(manager)
        ).run_sweep(circuit, points, repetitions=32, scope=scope)
        assert_sweeps_equal(serial, pooled)
        assert live_segment_names() == []

    @pytest.mark.parametrize(
        "make_state,prob_fn,circuit_factory,points", BACKENDS
    )
    def test_batch_matches_serial_on_all_backends(
        self, manager, make_state, prob_fn, circuit_factory, points
    ):
        circuits = [circuit_factory(), clifford_circuit()]
        resolvers = [points[1], None]
        serial = make_sim(make_state, prob_fn, seed=5).run_batch(
            circuits, resolvers, repetitions=24
        )
        pooled = make_sim(
            make_state, prob_fn, seed=5, executor=pool_exec(manager)
        ).run_batch(circuits, resolvers, repetitions=24)
        assert_sweeps_equal(serial, pooled)
        assert live_segment_names() == []

    def test_shm_equals_pickle_transport(self, manager):
        circuit = parameterized_circuit()
        shm = sv_sim(3, pool_exec(manager, "shm")).run_sweep(
            circuit, PARAM_POINTS, repetitions=40
        )
        pickled = sv_sim(3, pool_exec(manager, "pickle")).run_sweep(
            circuit, PARAM_POINTS, repetitions=40
        )
        assert_sweeps_equal(shm, pickled)

    def test_repetitions_scope_matches_serial_chunks(self, manager):
        # scope="repetitions" routes each point through execute(): the
        # chunk-geometry contract (pooled == SerialExecutor with the
        # same chunk count) must hold for the shm transport too.
        circuit = parameterized_circuit()
        pooled = sv_sim(9, pool_exec(manager, "shm")).run_sweep(
            circuit, PARAM_POINTS, repetitions=30, scope="repetitions"
        )
        serial = sv_sim(9, SerialExecutor(chunks=2)).run_sweep(
            circuit, PARAM_POINTS, repetitions=30, scope="repetitions"
        )
        assert_sweeps_equal(pooled, serial)
        assert live_segment_names() == []

    def test_adaptive_split_schedule_parity(self, manager):
        # min_chunk_repetitions=4 forces point splits at these sizes; a
        # split schedule exercises multi-slot planes (row bands) and
        # must still match the in-process run of the same schedule and
        # the pickled transport bit-for-bit.
        circuit = parameterized_circuit()

        def run(executor):
            return sv_sim(21, executor).run_sweep(
                circuit, PARAM_POINTS[:2], repetitions=64
            )

        shm = run(
            pool_exec(
                manager, "shm", scheduler=AdaptiveScheduler(min_chunk_repetitions=4)
            )
        )
        pickled = run(
            pool_exec(
                manager,
                "pickle",
                scheduler=AdaptiveScheduler(min_chunk_repetitions=4),
            )
        )
        in_process = run(
            ProcessPoolExecutor(
                num_workers=1,
                scheduler=AdaptiveScheduler(min_chunk_repetitions=4),
            )
        )
        assert_sweeps_equal(shm, pickled)
        assert_sweeps_equal(shm, in_process)
        assert live_segment_names() == []

    def test_single_worker_fallback_matches_pool(self, manager):
        circuit = parameterized_circuit()
        fallback = sv_sim(
            2, ProcessPoolExecutor(num_workers=1, result_transport="shm")
        ).run_sweep(circuit, PARAM_POINTS, repetitions=16)
        pooled = sv_sim(2, pool_exec(manager, "shm")).run_sweep(
            circuit, PARAM_POINTS, repetitions=16
        )
        assert_sweeps_equal(fallback, pooled)

    def test_transport_validation(self):
        with pytest.raises(ValueError, match="result_transport"):
            ProcessPoolExecutor(num_workers=2, result_transport="carrier-pigeon")
        assert (
            ProcessPoolExecutor(
                num_workers=2, result_transport="pickle"
            ).result_transport
            == "pickle"
        )
        assert ProcessPoolExecutor(num_workers=2).result_transport in (
            "shm",
            "pickle",
        )


# ----------------------------------------------------------------------
# streaming iterators
# ----------------------------------------------------------------------

class TestStreaming:
    def test_run_sweep_iter_matches_list_api(self, manager):
        circuit = parameterized_circuit()
        simulator = sv_sim(13, pool_exec(manager))
        eager = simulator.run_sweep(circuit, PARAM_POINTS, repetitions=32)
        streamed = list(
            sv_sim(13, pool_exec(manager)).run_sweep_iter(
                circuit, PARAM_POINTS, repetitions=32
            )
        )
        assert_sweeps_equal(eager, streamed)

    def test_run_batch_iter_matches_list_api(self, manager):
        circuits = [parameterized_circuit(), clifford_circuit()]
        resolvers = [PARAM_POINTS[2], None]
        eager = sv_sim(17, pool_exec(manager)).run_batch(
            circuits, resolvers, repetitions=24
        )
        streamed = list(
            sv_sim(17, pool_exec(manager)).run_batch_iter(
                circuits, resolvers, repetitions=24
            )
        )
        assert_sweeps_equal(eager, streamed)

    def test_serial_iter_streams_without_executor(self):
        circuit = parameterized_circuit()
        eager = sv_sim(7).run_sweep(circuit, PARAM_POINTS, repetitions=16)
        it = sv_sim(7).run_sweep_iter(circuit, PARAM_POINTS, repetitions=16)
        assert_sweeps_equal(eager, list(it))

    def test_iter_validates_eagerly(self, manager):
        simulator = sv_sim(1, pool_exec(manager))
        with pytest.raises(ValueError, match="scope"):
            simulator.run_sweep_iter(
                parameterized_circuit(), PARAM_POINTS, 8, scope="bogus"
            )
        with pytest.raises(ValueError, match="resolvers"):
            simulator.run_batch_iter(
                [parameterized_circuit()], [None, None], 8
            )

    def test_midstream_close_releases_segments(self, manager):
        simulator = sv_sim(23, pool_exec(manager))
        iterator = simulator.run_sweep_iter(
            parameterized_circuit(), PARAM_POINTS, repetitions=32
        )
        next(iterator)
        iterator.close()
        assert live_segment_names() == []


# ----------------------------------------------------------------------
# lifecycle: segments never leak
# ----------------------------------------------------------------------

class TestSegmentLifecycle:
    def test_poisoned_pool_releases_segments(self, manager):
        simulator = sv_sim(4, pool_exec(manager))
        with pytest.raises(Exception):
            simulator.run_sweep(
                parameterized_circuit(), [{"wrong": 1.0}] * 3, repetitions=8
            )
        assert manager._pool is None  # fail-safe shutdown happened
        assert live_segment_names() == []

    def test_manager_shutdown_is_segment_backstop(self, manager):
        from repro.sampler.service import (
            _WorkerPayload,
            _warm_worker,
            execution_key,
        )

        plane = PointPlanes({"m": (0, 1, 2)}, N, 8)
        simulator = sv_sim(1)
        program = simulator.compile(parameterized_circuit())
        manager.run(
            execution_key(simulator, program=program),
            1,
            START_METHODS[0],
            lambda: _WorkerPayload(simulator, program=program),
            _warm_worker,
            [()],
            planes=(plane,),
        )
        assert plane.name in live_segment_names()
        manager.shutdown()
        assert live_segment_names() == []

    def test_completed_runs_leave_no_segments(self, manager):
        simulator = sv_sim(8, pool_exec(manager))
        simulator.run(parameterized_circuit(), 32, PARAM_POINTS[1])
        simulator.run_sweep(parameterized_circuit(), PARAM_POINTS, 16)
        assert live_segment_names() == []


# ----------------------------------------------------------------------
# zero-copy view-backed Results
# ----------------------------------------------------------------------

class TestViewBackedResults:
    def _view_result(self, manager, repetitions=32):
        simulator = sv_sim(31, pool_exec(manager))
        return simulator.run_sweep(
            parameterized_circuit(), PARAM_POINTS, repetitions
        )

    def test_result_adopts_views_without_copy(self):
        planes = PointPlanes({"m": (0, 1, 2)}, N, 5)
        records, _ = planes.views()
        result = bgls.Result(records)
        # np.asarray on a matching dtype is the identity: the Result
        # holds the very view object, flags and buffer included.
        assert result.measurements["m"] is records["m"]
        assert not result.measurements["m"].flags.writeable

    def test_pooled_results_are_readonly_views(self, manager):
        for result in self._view_result(manager):
            array = result.measurements["m"]
            assert not array.flags.writeable
            assert array.base is not None  # a view, not an owned copy
            with pytest.raises(ValueError):
                array[0, 0] = 1

    def test_helpers_work_on_readonly_views(self, manager):
        results = self._view_result(manager)
        owned = [
            bgls.Result(
                {k: np.array(v) for k, v in r.measurements.items()}
            )
            for r in results
        ]
        for view_backed, copy_backed in zip(results, owned):
            assert view_backed.histogram("m") == copy_backed.histogram("m")
            assert view_backed.probabilities("m") == copy_backed.probabilities("m")
        merged_views = results[0].merged_with(results[1])
        merged_owned = owned[0].merged_with(owned[1])
        assert merged_views == merged_owned
        assert merged_views.repetitions == 2 * results[0].repetitions

    def test_views_survive_unlink_and_pool_shutdown(self, manager):
        results = self._view_result(manager)
        manager.shutdown()
        gc.collect()
        # Segments are unlinked (nothing live) yet every view still reads.
        assert live_segment_names() == []
        for result in results:
            assert result.measurements["m"].sum() >= 0
            assert result.repetitions == 32
