"""SamplingService job-tier contracts: lifecycle, tenancy, isolation.

The service contracts pinned here (the PR's acceptance criteria):

* **Lifecycle** — ``submit`` returns a ``QUEUED`` handle that moves
  through ``RUNNING`` to exactly one of ``DONE``/``FAILED``/
  ``CANCELLED``; ``result(timeout=)`` blocks/raises per the documented
  types; ``stream()`` yields per-point ``Result``s as they land.
* **Determinism** — every job's streamed output is bit-for-bit equal to
  a direct ``run_sweep`` of the same ``(circuit, params, repetitions,
  seed)``, regardless of tenant interleaving or pool grouping.
* **Fair share** — quota-weighted fair queueing: under contention a
  quota-2 tenant completes ~2x the jobs of a quota-1 tenant, and a
  newly-arriving light tenant is served promptly (start-time clamping:
  no banked credit, no monopolization).
* **Warm-pool grouping** — interleaved same-key jobs across tenants
  cost one pool init per distinct execution key, not one per job.
* **Bounded result store** — LRU + max-entries/max-bytes eviction;
  ``result()`` after eviction raises ``ResultExpired``; reads refresh
  recency.
* **Failure isolation** — a job that poisons the pool FAILs alone,
  its planes are released (shm audit stays clean), and other tenants'
  queued jobs complete on a rebuilt pool.

Pooled tests take their start method from ``BGLS_POOL_START_METHODS``
(comma-separated; default ``fork``) like the rest of the lifecycle
suite, so CI runs them under forkserver and spawn.
"""

import multiprocessing
import os
import threading
import time

import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.sampler import (
    JobCancelled,
    ResultExpired,
    SamplingService,
    SerialExecutor,
)
from repro.sampler import jobs as jobs_mod
from repro.sampler.result_planes import live_segment_names
from repro.states import StateVectorSimulationState

N = 3
QUBITS = cirq.LineQubit.range(N)
THETA = cirq.Symbol("theta")


def pooled_start_method():
    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return (methods or [available[0]])[0]


def sweep_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.Rx(THETA).on(QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


def other_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[2]),
        cirq.CNOT(QUBITS[2], QUBITS[0]),
        cirq.Rz(THETA).on(QUBITS[1]),
        cirq.measure(*QUBITS, key="m"),
    )


POINTS = [{"theta": 0.2 * i} for i in range(3)]


def concrete_circuit():
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.measure(*QUBITS, key="m"),
    )


def make_service(executor=None, **kw):
    return SamplingService(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        executor=executor,
        **kw,
    )


def serial_service(**kw):
    return make_service(executor=SerialExecutor(), **kw)


def pooled_service(**kw):
    # executor=None: the service builds (and owns) the warm pool, so
    # shutdown() is responsible for joining the workers — exactly the
    # deployment shape the child/shm audits verify.
    return make_service(
        num_workers=2, start_method=pooled_start_method(), **kw
    )


def _wait_terminal(handle, timeout=30.0):
    deadline = time.monotonic() + timeout
    while handle.status() not in (
        jobs_mod.DONE,
        jobs_mod.FAILED,
        jobs_mod.CANCELLED,
    ):
        assert time.monotonic() < deadline, f"{handle} never finished"
        time.sleep(0.005)


def direct_sweep(circuit, params, repetitions, seed):
    sim = bgls.Simulator(
        StateVectorSimulationState(QUBITS),
        bgls.act_on,
        born.compute_probability_state_vector,
        seed=seed,
    )
    return sim.run_sweep(circuit, params, repetitions)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------

class TestJobLifecycle:
    def test_submit_runs_to_done(self):
        with serial_service() as service:
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=8, seed=3
            )
            results = job.result(timeout=30)
            assert job.status() == jobs_mod.DONE
            assert job.exception() is None
            assert len(results) == len(POINTS)
            assert results == direct_sweep(sweep_circuit(), POINTS, 8, 3)

    def test_single_point_default_params(self):
        with serial_service() as service:
            job = service.submit(
                concrete_circuit(), tenant="a", repetitions=4, seed=1
            )
            assert job.num_points == 1
            assert len(job.result(timeout=30)) == 1

    def test_empty_params_job_completes_empty(self):
        with serial_service() as service:
            job = service.submit(
                sweep_circuit(), [], tenant="a", repetitions=4, seed=1
            )
            assert job.result(timeout=30) == []
            assert job.status() == jobs_mod.DONE

    def test_stream_yields_each_point(self):
        with serial_service() as service:
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=8, seed=5
            )
            streamed = list(job.stream())
            assert streamed == direct_sweep(sweep_circuit(), POINTS, 8, 5)
            # A second stream replays from the banked results.
            assert list(job.stream()) == streamed

    def test_result_timeout(self):
        blocker = threading.Event()

        def slow_apply(op, state):
            blocker.wait(5)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            slow_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        with service:
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=2, seed=1
            )
            with pytest.raises(TimeoutError):
                job.result(timeout=0.05)
            blocker.set()
            job.result(timeout=30)

    def test_seed_drawn_and_replayable_when_omitted(self):
        with serial_service() as service:
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=6
            )
            results = job.result(timeout=30)
            assert job.seed >= 0
            assert results == direct_sweep(
                sweep_circuit(), POINTS, 6, job.seed
            )

    def test_job_ids_unique(self):
        with serial_service() as service:
            ids = {
                service.submit(
                    concrete_circuit(), tenant="a", repetitions=1, seed=i
                ).job_id
                for i in range(5)
            }
            assert len(ids) == 5


class TestSubmitValidation:
    def test_boundary_errors(self):
        with serial_service() as service:
            with pytest.raises(ValueError, match="repetitions"):
                service.submit(sweep_circuit(), tenant="a", repetitions=0)
            with pytest.raises(ValueError, match="seed"):
                service.submit(
                    sweep_circuit(), tenant="a", repetitions=1, seed=-3
                )
            with pytest.raises(ValueError, match="seed"):
                service.submit(
                    sweep_circuit(), tenant="a", repetitions=1, seed=1.5
                )
            with pytest.raises(ValueError, match="tenant"):
                service.submit(sweep_circuit(), tenant="", repetitions=1)
            with pytest.raises(ValueError, match="measure"):
                service.submit(
                    cirq.Circuit(cirq.H(QUBITS[0])), tenant="a", repetitions=1
                )

    def test_bare_state_rejected_at_submit(self):
        from repro.states.chform import StabilizerChForm

        service = SamplingService(
            StabilizerChForm(num_qubits=N),
            bgls.act_on,
            born.compute_probability_stabilizer_state,
            executor=SerialExecutor(),
        )
        with service:
            with pytest.raises(TypeError, match="SimulationState"):
                service.submit(
                    cirq.Circuit(
                        cirq.H(QUBITS[0]), cirq.measure(*QUBITS, key="m")
                    ),
                    tenant="a",
                    repetitions=1,
                )

    def test_submit_after_shutdown_raises(self):
        service = serial_service()
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(sweep_circuit(), tenant="a", repetitions=1)

    def test_register_tenant_validation(self):
        with serial_service() as service:
            with pytest.raises(ValueError, match="quota"):
                service.register_tenant("a", quota=0)
            with pytest.raises(ValueError, match="tenant"):
                service.register_tenant("")


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------

class TestCancellation:
    def test_cancel_queued_job(self):
        gate = threading.Event()

        def slow_apply(op, state):
            gate.wait(10)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            slow_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        with service:
            blocker = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=1, seed=1
            )
            queued = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=1, seed=2
            )
            assert queued.cancel() is True
            assert queued.status() == jobs_mod.CANCELLED
            with pytest.raises(JobCancelled):
                queued.result(timeout=1)
            with pytest.raises(JobCancelled):
                list(queued.stream())
            # Cancelling a terminal job is a no-op.
            assert queued.cancel() is False
            gate.set()
            blocker.result(timeout=30)
            assert service.stats()["a"]["jobs_cancelled"] == 1

    def test_cancel_running_job_at_point_boundary(self):
        release = threading.Event()

        def slow_apply(op, state):
            release.wait(10)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            slow_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        with service:
            points = [{"theta": 0.1 * i} for i in range(20)]
            job = service.submit(
                sweep_circuit(), points, tenant="a", repetitions=1, seed=1
            )
            deadline = time.monotonic() + 10
            while job.status() == jobs_mod.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert job.cancel() is True
            release.set()
            with pytest.raises(JobCancelled):
                job.result(timeout=30)
            assert job.status() == jobs_mod.CANCELLED


# ----------------------------------------------------------------------
# fair share + quotas
# ----------------------------------------------------------------------

class TestFairShare:
    def _ordered_completions(self, quota_a, quota_b, jobs_each=8):
        """Dispatch order of equal-cost jobs from two contending tenants.

        A gate-blocked first job holds the dispatcher while both
        backlogs are enqueued, so selection order is purely the
        fair-share policy's.
        """
        gate = threading.Event()

        def gated_apply(op, state):
            gate.wait(10)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            gated_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        order = []
        with service:
            service.register_tenant("a", quota=quota_a)
            service.register_tenant("b", quota=quota_b)
            blocker = service.submit(
                sweep_circuit(), POINTS, tenant="warmup", repetitions=1, seed=0
            )
            handles = []
            for k in range(jobs_each):
                handles.append(
                    (
                        "a",
                        service.submit(
                            sweep_circuit(),
                            POINTS,
                            tenant="a",
                            repetitions=1,
                            seed=10 + k,
                        ),
                    )
                )
                handles.append(
                    (
                        "b",
                        service.submit(
                            sweep_circuit(),
                            POINTS,
                            tenant="b",
                            repetitions=1,
                            seed=20 + k,
                        ),
                    )
                )
            gate.set()
            blocker.result(timeout=30)
            for _, handle in handles:
                handle.result(timeout=30)
            # Reconstruct dispatch order from per-job start bookkeeping:
            # last_served is monotone, but simpler — poll completion via
            # the dispatcher's serial execution: jobs finish in dispatch
            # order on a serial executor, so sort by first-result time is
            # unnecessary; instead record the order results landed.
            order = sorted(
                handles, key=lambda pair: pair[1]._finished_seq
            )
        return [tenant for tenant, _ in order]

    def test_equal_quotas_round_robin(self):
        order = self._ordered_completions(1.0, 1.0)
        # Strict alternation after the warmup: no tenant ever gets two
        # consecutive dispatches while the other has jobs pending.
        for first, second in zip(order, order[1:]):
            assert first != second

    def test_quota_weighting_skews_dispatch(self):
        order = self._ordered_completions(2.0, 1.0)
        first_nine = order[:9]
        assert first_nine.count("a") >= 5
        assert first_nine.count("b") >= 1

    def test_new_tenant_join_does_not_monopolize(self):
        # A tenant arriving after others have been served joins at the
        # current virtual time: its backlog interleaves instead of
        # running first in an uninterrupted burst.
        gate = threading.Event()

        def gated_apply(op, state):
            gate.wait(10)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            gated_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        with service:
            early = [
                service.submit(
                    sweep_circuit(), POINTS, tenant="old", repetitions=1, seed=k
                )
                for k in range(6)
            ]
            gate.set()
            for handle in early[:3]:
                handle.result(timeout=30)
            gate.clear()
            stall = service.submit(
                sweep_circuit(), POINTS, tenant="old", repetitions=1, seed=50
            )
            late = [
                service.submit(
                    sweep_circuit(), POINTS, tenant="new", repetitions=1, seed=60 + k
                )
                for k in range(6)
            ]
            gate.set()
            for handle in early + [stall] + late:
                handle.result(timeout=30)
            sequence = [
                tenant
                for tenant, _ in sorted(
                    [("old", h) for h in early + [stall]]
                    + [("new", h) for h in late],
                    key=lambda pair: pair[1]._finished_seq,
                )
            ]
            # The new tenant's six jobs must not all run consecutively
            # ahead of the old tenant's remaining backlog.
            tail = sequence[-12:]
            first_old_after_join = tail.index("old")
            assert first_old_after_join < 6


# ----------------------------------------------------------------------
# warm-pool sharing + key grouping
# ----------------------------------------------------------------------

class TestWarmPoolGrouping:
    def test_interleaved_keys_group_to_distinct_inits(self):
        with pooled_service() as service:
            manager = service.executor.pool_manager
            circuits = [sweep_circuit(), other_circuit()]
            handles = []
            for tenant in ("a", "b"):
                for round_ in range(2):
                    for index, circuit in enumerate(circuits):
                        handles.append(
                            service.submit(
                                circuit,
                                POINTS,
                                tenant=tenant,
                                repetitions=16,
                                seed=100 * round_ + index,
                            )
                        )
            for handle in handles:
                assert len(handle.result(timeout=120)) == len(POINTS)
            # 8 jobs over 2 distinct execution keys: grouping must keep
            # pool initializations at the number of keys, not jobs.
            assert manager.stats["inits"] <= len(circuits)
            reinits = sum(t["reinits"] for t in service.stats().values())
            assert reinits == manager.stats["inits"]
        assert live_segment_names() == []

    def test_pooled_results_bit_for_bit(self):
        with pooled_service() as service:
            job_a = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=32, seed=11
            )
            job_b = service.submit(
                sweep_circuit(), POINTS, tenant="b", repetitions=32, seed=22
            )
            streamed = list(job_a.stream())
            assert streamed == direct_sweep(sweep_circuit(), POINTS, 32, 11)
            assert job_b.result(timeout=120) == direct_sweep(
                sweep_circuit(), POINTS, 32, 22
            )
        assert live_segment_names() == []


# ----------------------------------------------------------------------
# bounded result store
# ----------------------------------------------------------------------

class TestResultStore:
    def test_entry_eviction_lru(self):
        with serial_service(max_result_entries=2) as service:
            handles = [
                service.submit(
                    sweep_circuit(), POINTS, tenant="a", repetitions=4, seed=k
                )
                for k in range(3)
            ]
            # Wait via status() — reading results would touch the LRU
            # order this test is pinning down.
            for handle in handles:
                _wait_terminal(handle)
            # Third completion evicted the first (oldest, never read).
            with pytest.raises(ResultExpired):
                handles[0].result(timeout=1)
            assert handles[0].status() == jobs_mod.DONE
            assert service.evictions == 1
            # Reading refreshes recency: touch job 1, then complete a
            # fourth job — job 2 (now least recently used) is the next
            # victim, not the freshly-read job 1.
            handles[1].result(timeout=1)
            extra = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=4, seed=9
            )
            _wait_terminal(extra)
            handles[1].result(timeout=1)
            with pytest.raises(ResultExpired):
                handles[2].result(timeout=1)

    def test_byte_budget_eviction(self):
        with serial_service(max_result_bytes=1) as service:
            first = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=4, seed=1
            )
            first.result(timeout=30)
            second = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=4, seed=2
            )
            # The newest result is always admitted; the older one pays.
            assert len(second.result(timeout=30)) == len(POINTS)
            with pytest.raises(ResultExpired):
                first.result(timeout=1)
            assert service.result_store_entries == 1

    def test_store_accounting(self):
        with serial_service() as service:
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=4, seed=1
            )
            job.result(timeout=30)
            assert service.result_store_entries == 1
            assert service.result_store_bytes > 0
            assert service.evictions == 0


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------

class TestFailureIsolation:
    def test_poisoned_job_fails_alone_pool_recovers(self):
        with pooled_service() as service:
            manager = service.executor.pool_manager
            # Unresolvable resolvers poison the workers mid-batch: the
            # parameterized gate cannot specialize without theta.
            poisoned = service.submit(
                sweep_circuit(), [{}, {}], tenant="evil", repetitions=8, seed=1
            )
            survivors = [
                service.submit(
                    sweep_circuit(),
                    POINTS,
                    tenant="nice",
                    repetitions=16,
                    seed=40 + k,
                )
                for k in range(2)
            ]
            with pytest.raises(ValueError, match="theta"):
                poisoned.result(timeout=120)
            assert poisoned.status() == jobs_mod.FAILED
            assert isinstance(poisoned.exception(), ValueError)
            for k, handle in enumerate(survivors):
                assert handle.result(timeout=120) == direct_sweep(
                    sweep_circuit(), POINTS, 16, 40 + k
                )
            stats = service.stats()
            assert stats["evil"]["jobs_failed"] == 1
            assert stats["nice"]["jobs_completed"] == 2
            # The pool was rebuilt after the poison, not abandoned.
            assert manager.stats["inits"] >= 1
        # Lifecycle contracts: no leaked shm segments, workers joined.
        assert live_segment_names() == []

    def test_failed_job_does_not_enter_result_store(self):
        with serial_service() as service:
            bad = service.submit(
                sweep_circuit(), [{}], tenant="a", repetitions=2, seed=1
            )
            with pytest.raises(ValueError):
                bad.result(timeout=30)
            assert service.result_store_entries == 0
            with pytest.raises(ValueError):
                list(bad.stream())


# ----------------------------------------------------------------------
# accounting + shutdown
# ----------------------------------------------------------------------

class TestStatsAndShutdown:
    def test_stats_shape(self):
        with serial_service() as service:
            service.register_tenant("a", quota=2.0)
            job = service.submit(
                sweep_circuit(), POINTS, tenant="a", repetitions=8, seed=1
            )
            job.result(timeout=30)
            stats = service.stats()["a"]
            assert stats["quota"] == 2.0
            assert stats["jobs_submitted"] == 1
            assert stats["jobs_completed"] == 1
            assert stats["jobs_queued"] == 0
            assert stats["repetitions"] == 8 * len(POINTS)
            assert stats["estimated_cost"] > 0
            assert stats["queue_wait_seconds"] >= 0.0

    def test_shutdown_cancels_queued_and_is_idempotent(self):
        gate = threading.Event()

        def gated_apply(op, state):
            gate.wait(10)
            return bgls.act_on(op, state)

        service = SamplingService(
            StateVectorSimulationState(QUBITS),
            gated_apply,
            born.compute_probability_state_vector,
            executor=SerialExecutor(),
        )
        running = service.submit(
            sweep_circuit(), POINTS, tenant="a", repetitions=1, seed=1
        )
        queued = service.submit(
            sweep_circuit(), POINTS, tenant="a", repetitions=1, seed=2
        )
        gate.set()
        service.shutdown()
        service.shutdown()
        assert queued.status() == jobs_mod.CANCELLED
        assert running.status() in (jobs_mod.DONE, jobs_mod.CANCELLED)

    def test_owned_pool_manager_shut_down(self):
        service = pooled_service()
        job = service.submit(
            sweep_circuit(), POINTS, tenant="a", repetitions=8, seed=1
        )
        job.result(timeout=120)
        manager = service.executor.pool_manager
        service.shutdown()
        assert manager._pool is None
        assert live_segment_names() == []
