"""Batched trajectory engine: determinism, parity, and fallback contracts.

The batched engine (:mod:`repro.sampler.trajectory_batch`) pins its own
deterministic contract — trajectory ``r`` of point ``p`` draws uniforms
from ``SeedSequence([base, p, rep_base + r])`` at plan-static offsets —
so its output must be bit-for-bit identical across tile sizes, chunk
geometries, worker counts, and (because the uniforms and Born
probabilities coincide) across every backend advertising the
``batched_trajectories`` capability.  Serial mode's existing parity
contracts must remain untouched: backends without the capability, custom
``apply_op`` functions, and user candidate functions all fall back to
the serial loop unchanged.
"""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, total_variation_distance
from repro.mps import MPSState
from repro.sampler.executors import ProcessPoolExecutor, SerialExecutor
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)
from repro.states.registry import capabilities_for


def pool_start_methods():
    import multiprocessing
    import os

    env = os.environ.get("BGLS_POOL_START_METHODS", "fork")
    requested = [m.strip() for m in env.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    methods = [m for m in requested if m in available]
    return methods or [available[0]]


START_METHODS = pool_start_methods()

N = 3
QUBITS = cirq.LineQubit.range(N)


def noisy_circuit():
    """Trajectory-forcing dense circuit: noise + mid-circuit measurement."""
    c = cirq.Circuit(
        [cirq.H(q) for q in QUBITS],
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.rx(0.4)(QUBITS[2]),
        [cirq.depolarize(0.03)(q) for q in QUBITS],
        cirq.measure(QUBITS[0], key="mid"),
        cirq.CNOT(QUBITS[1], QUBITS[2]),
        [cirq.depolarize(0.02)(q) for q in QUBITS],
        cirq.measure(*QUBITS, key="m"),
    )
    return c


def clifford_mid_measure_circuit():
    """Trajectory-forcing Clifford circuit every stacked backend supports."""
    return cirq.Circuit(
        cirq.H(QUBITS[0]),
        cirq.CNOT(QUBITS[0], QUBITS[1]),
        cirq.S(QUBITS[2]),
        cirq.measure(QUBITS[0], key="mid"),
        cirq.H(QUBITS[2]),
        cirq.CNOT(QUBITS[1], QUBITS[2]),
        cirq.measure(*QUBITS, key="m"),
    )


SV = pytest.param(
    lambda: StateVectorSimulationState(QUBITS),
    born.compute_probability_state_vector,
    id="state_vector",
)
CHFORM = pytest.param(
    lambda: StabilizerChFormSimulationState(QUBITS),
    born.compute_probability_stabilizer_state,
    id="stabilizer_ch_form",
)
TABLEAU = pytest.param(
    lambda: CliffordTableauSimulationState(QUBITS),
    born.compute_probability_tableau,
    id="clifford_tableau",
)
BATCHED_BACKENDS = [SV, CHFORM, TABLEAU]


def make_sim(make_state, prob_fn, seed=7, mode="batched", tile=None, **kw):
    return bgls.Simulator(
        make_state(),
        bgls.act_on,
        prob_fn,
        seed=seed,
        trajectory_mode=mode,
        trajectory_tile=tile,
        **kw,
    )


def run_bits(sim, circuit, reps=128):
    result = sim.run(circuit, repetitions=reps)
    return {key: result.measurements[key] for key in result.measurements}


def assert_records_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


class TestCapabilityAndValidation:
    def test_advertising_backends(self):
        for state_type in (
            StateVectorSimulationState,
            StabilizerChFormSimulationState,
            CliffordTableauSimulationState,
        ):
            assert capabilities_for(state_type).batched_trajectories is not None
        for state_type in (DensityMatrixSimulationState, MPSState):
            assert capabilities_for(state_type).batched_trajectories is None

    def test_default_mode_is_serial(self):
        sim = bgls.Simulator(
            StateVectorSimulationState(QUBITS),
            bgls.act_on,
            born.compute_probability_state_vector,
        )
        assert sim.trajectory_mode == "serial"

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="trajectory_mode"):
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                mode="wat",
            )
        with pytest.raises(ValueError, match="trajectory_tile"):
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                tile=0,
            )

    def test_custom_apply_op_falls_back_to_serial(self):
        def my_apply(op, state):
            return bgls.act_on(op, state)

        serial = bgls.Simulator(
            StateVectorSimulationState(QUBITS),
            my_apply,
            born.compute_probability_state_vector,
            seed=3,
            trajectory_mode="serial",
        )
        batched = bgls.Simulator(
            StateVectorSimulationState(QUBITS),
            my_apply,
            born.compute_probability_state_vector,
            seed=3,
            trajectory_mode="batched",
        )
        assert_records_equal(
            run_bits(serial, noisy_circuit()),
            run_bits(batched, noisy_circuit()),
        )

    def test_user_candidate_function_falls_back_to_serial(self):
        def candidates(state, bits, support):
            return born.candidates_state_vector(state, bits, support)

        serial = bgls.Simulator(
            StateVectorSimulationState(QUBITS),
            bgls.act_on,
            born.compute_probability_state_vector,
            compute_candidate_probabilities=candidates,
            seed=3,
            trajectory_mode="serial",
        )
        batched = bgls.Simulator(
            StateVectorSimulationState(QUBITS),
            bgls.act_on,
            born.compute_probability_state_vector,
            compute_candidate_probabilities=candidates,
            seed=3,
            trajectory_mode="batched",
        )
        assert_records_equal(
            run_bits(serial, noisy_circuit()),
            run_bits(batched, noisy_circuit()),
        )

    def test_unsupported_backend_falls_back_to_serial(self):
        serial = make_sim(
            lambda: DensityMatrixSimulationState(QUBITS),
            born.compute_probability_density_matrix,
            seed=3,
            mode="serial",
        )
        batched = make_sim(
            lambda: DensityMatrixSimulationState(QUBITS),
            born.compute_probability_density_matrix,
            seed=3,
            mode="batched",
        )
        assert_records_equal(
            run_bits(serial, noisy_circuit()),
            run_bits(batched, noisy_circuit()),
        )


class TestDeterminism:
    @pytest.mark.parametrize("make_state,prob_fn", BATCHED_BACKENDS)
    def test_self_replay(self, make_state, prob_fn):
        circuit = (
            noisy_circuit()
            if make_state().__class__ is StateVectorSimulationState
            else clifford_mid_measure_circuit()
        )
        a = run_bits(make_sim(make_state, prob_fn, seed=11), circuit)
        b = run_bits(make_sim(make_state, prob_fn, seed=11), circuit)
        assert_records_equal(a, b)

    @pytest.mark.parametrize("make_state,prob_fn", BATCHED_BACKENDS)
    def test_tile_size_invariance(self, make_state, prob_fn):
        circuit = (
            noisy_circuit()
            if make_state().__class__ is StateVectorSimulationState
            else clifford_mid_measure_circuit()
        )
        ref = run_bits(make_sim(make_state, prob_fn, seed=11), circuit)
        for tile in (1, 3, 7, 64):
            got = run_bits(
                make_sim(make_state, prob_fn, seed=11, tile=tile), circuit
            )
            assert_records_equal(ref, got)

    def test_cross_backend_determinism(self):
        """Same uniforms x same Born probabilities: every advertising
        backend produces identical batched samples for one circuit."""
        circuit = clifford_mid_measure_circuit()
        sv = run_bits(
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=23,
            ),
            circuit,
        )
        ch = run_bits(
            make_sim(
                lambda: StabilizerChFormSimulationState(QUBITS),
                born.compute_probability_stabilizer_state,
                seed=23,
            ),
            circuit,
        )
        tab = run_bits(
            make_sim(
                lambda: CliffordTableauSimulationState(QUBITS),
                born.compute_probability_tableau,
                seed=23,
            ),
            circuit,
        )
        assert_records_equal(sv, ch)
        assert_records_equal(sv, tab)

    def test_auto_mode_equals_batched_on_supported_backend(self):
        circuit = noisy_circuit()
        batched = run_bits(
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=5,
                mode="batched",
            ),
            circuit,
        )
        auto = run_bits(
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=5,
                mode="auto",
            ),
            circuit,
        )
        assert_records_equal(batched, auto)

    def test_measurement_only_plans_bypass_the_engine(self):
        """Pure-unitary circuits never enter trajectory mode, so batched
        and serial modes agree bit-for-bit there."""
        circuit = cirq.Circuit(
            cirq.H(QUBITS[0]),
            cirq.CNOT(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="m"),
        )
        serial = run_bits(
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=9,
                mode="serial",
            ),
            circuit,
        )
        batched = run_bits(
            make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=9,
                mode="batched",
            ),
            circuit,
        )
        assert_records_equal(serial, batched)

    def test_mid_circuit_record_consistency(self):
        """Final-measurement records must equal the tracked bitstring
        columns, and the mid-circuit plane must hold 0/1 entries only."""
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=13,
        )
        result = sim.run(noisy_circuit(), repetitions=200)
        mid = result.measurements["mid"]
        fin = result.measurements["m"]
        assert mid.shape == (200, 1)
        assert fin.shape == (200, N)
        assert set(np.unique(mid)) <= {0, 1}
        assert set(np.unique(fin)) <= {0, 1}


class TestStatisticalAgreement:
    REPS = 4000

    @pytest.mark.parametrize("make_state,prob_fn", BATCHED_BACKENDS)
    def test_batched_matches_serial_distribution(self, make_state, prob_fn):
        circuit = (
            noisy_circuit()
            if make_state().__class__ is StateVectorSimulationState
            else clifford_mid_measure_circuit()
        )
        serial = make_sim(make_state, prob_fn, seed=1, mode="serial")
        batched = make_sim(make_state, prob_fn, seed=2, mode="batched")
        p = empirical_distribution(
            serial.run(circuit, repetitions=self.REPS).measurements["m"], N
        )
        q = empirical_distribution(
            batched.run(circuit, repetitions=self.REPS).measurements["m"], N
        )
        assert total_variation_distance(p, q) < 0.06

    def test_batched_matches_exact_noiseless_distribution(self):
        """A mid-circuit-measurement Clifford circuit still produces the
        right marginal statistics through the batched engine."""
        circuit = clifford_mid_measure_circuit()
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=4,
        )
        bits = sim.run(circuit, repetitions=self.REPS).measurements["m"]
        # Bell pair on qubits 0,1: mid-circuit measurement of qubit 0
        # collapses both, so they stay perfectly correlated.
        assert np.array_equal(bits[:, 0], bits[:, 1])


@pytest.mark.parametrize("start_method", START_METHODS)
class TestPooledParity:
    """Batched output is invariant under executor geometry and equals the
    serial sweep — the pooled half of the determinism contract."""

    PARAMS = [{"t": 0.2}, {"t": 0.9}]
    REPS = 120

    def _sweep_circuit(self):
        theta = cirq.Symbol("t")
        return cirq.Circuit(
            [cirq.H(q) for q in QUBITS],
            cirq.rx(theta)(QUBITS[0]),
            [cirq.depolarize(0.03)(q) for q in QUBITS],
            cirq.CNOT(QUBITS[0], QUBITS[1]),
            cirq.measure(*QUBITS, key="z"),
        )

    def _sweep_bits(self, executor, tile=None):
        sim = make_sim(
            lambda: StateVectorSimulationState(QUBITS),
            born.compute_probability_state_vector,
            seed=5,
            tile=tile,
            executor=executor,
        )
        return [
            r.measurements["z"]
            for r in sim.run_sweep(
                self._sweep_circuit(), self.PARAMS, repetitions=self.REPS
            )
        ]

    def test_worker_count_invariance(self, start_method):
        serial = self._sweep_bits(None)
        for workers in (1, 2):
            pooled = self._sweep_bits(
                ProcessPoolExecutor(
                    num_workers=workers,
                    reuse_pool=False,
                    start_method=start_method,
                )
            )
            for a, b in zip(serial, pooled):
                np.testing.assert_array_equal(a, b)

    def test_tile_through_pool_invariance(self, start_method):
        serial = self._sweep_bits(None)
        pooled = self._sweep_bits(
            ProcessPoolExecutor(
                num_workers=2, reuse_pool=False, start_method=start_method
            ),
            tile=17,
        )
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a, b)

    def test_chunk_geometry_invariance(self, start_method):
        circuit = noisy_circuit()

        def chunked(executor):
            sim = make_sim(
                lambda: StateVectorSimulationState(QUBITS),
                born.compute_probability_state_vector,
                seed=11,
                executor=executor,
            )
            return run_bits(sim, circuit, reps=self.REPS)

        two = chunked(SerialExecutor(chunks=2))
        four = chunked(SerialExecutor(chunks=4))
        assert_records_equal(two, four)
        pooled = chunked(
            ProcessPoolExecutor(
                num_workers=2,
                chunks_per_worker=1,
                reuse_pool=False,
                start_method=start_method,
            )
        )
        assert_records_equal(two, pooled)

    def test_adaptive_split_points_match_serial(self, start_method):
        from repro.sampler.schedule import AdaptiveScheduler

        serial = self._sweep_bits(None)
        pooled = self._sweep_bits(
            ProcessPoolExecutor(
                num_workers=2,
                reuse_pool=False,
                start_method=start_method,
                scheduler=AdaptiveScheduler(),
            )
        )
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a, b)
