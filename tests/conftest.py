"""Session-level hygiene for the warm-pool execution service.

The shared :class:`~repro.sampler.service.PoolManager` is shut down when
the test session ends, and — when ``BGLS_CHILD_AUDIT=1`` (set by the CI
pool-lifecycle job) — the session performs a leaked-process audit after
that teardown: any still-alive worker process is a lifecycle bug, not a
flake, and fails the run loudly.

``BGLS_SHM_AUDIT=1`` (same CI job) adds the shared-memory sibling: an
autouse per-test audit asserting that no result-plane segment allocated
by a test survives it, plus a session-finish sweep after the shared pool
goes down.

The audit has two layers:

* ``multiprocessing.active_children()`` — the authoritative worker
  check: every pool worker this process created is registered here under
  **every** start method (including forkserver, whose workers are OS
  children of the server process, not of pytest), and must be gone once
  the pools are shut down.
* a ``psutil`` sweep of the OS descendant tree (when psutil is
  installed) — defense in depth against processes multiprocessing does
  not track.  Multiprocessing's own long-lived infrastructure (the
  forkserver server and the resource tracker live until interpreter exit
  by design) is excluded by cmdline marker; since forked forkserver
  *workers* share the server's cmdline, that exclusion also covers them —
  they are intentionally left to the first layer, which sees them
  exactly.
"""

import multiprocessing
import os
import tempfile

import pytest

# Hermetic calibration: the persisted seconds-per-cost table must never
# read from or write to the developer's real cache (~/.cache/bgls) during
# tests — stored rates would reweight scheduling geometry and make parity
# tests depend on machine history.  Resolved lazily by
# repro.sampler.calibration on first table construction, so setting it at
# conftest import (before any test runs) is early enough.  Tests that
# exercise persistence point BGLS_CALIBRATION_DIR at their own tmp_path.
os.environ.setdefault(
    "BGLS_CALIBRATION_DIR", tempfile.mkdtemp(prefix="bgls-test-calibration-")
)


@pytest.fixture(autouse=True)
def _shm_segment_audit(request):
    """Per-test shared-memory leak audit, gated by ``BGLS_SHM_AUDIT=1``.

    Every result-plane segment must be unlinked by the time the test
    that allocated it finishes — including the poisoned-pool and
    abandoned-iterator (mid-iteration ``close()``) paths.  A segment
    still registered after a test is a lifecycle bug; it fails that test
    by name, and is force-unlinked so one leak cannot cascade into
    every later test.
    """
    if os.environ.get("BGLS_SHM_AUDIT") != "1":
        yield
        return
    from repro.sampler import result_planes

    leaked_before = result_planes.live_segment_names()
    yield
    leaked = result_planes.release_leaked_segments()
    if leaked and leaked != leaked_before:
        raise AssertionError(
            f"Test {request.node.nodeid} leaked shared-memory result "
            f"segments: {leaked}"
        )


def _audit_leaked_children():
    leaks = []
    for proc in multiprocessing.active_children():
        proc.join(timeout=10)
        if proc.is_alive():
            leaks.append(f"active_children: {proc!r}")
    try:
        import psutil
    except ImportError:
        return leaks
    benign = ("forkserver", "resource_tracker", "semaphore_tracker")
    for child in psutil.Process().children(recursive=True):
        try:
            cmdline = " ".join(child.cmdline())
        except psutil.Error:  # pragma: no cover - raced exit
            continue
        if any(marker in cmdline for marker in benign):
            continue
        if child.is_running() and child.status() != psutil.STATUS_ZOMBIE:
            leaks.append(f"os child pid={child.pid}: {cmdline!r}")
    return leaks


def pytest_sessionfinish(session, exitstatus):
    try:
        from repro.sampler.service import shutdown_shared_pool
    except ImportError:  # pragma: no cover - collection-time failures
        return
    shutdown_shared_pool()
    if os.environ.get("BGLS_SHM_AUDIT") == "1":
        from repro.sampler import result_planes

        leaked = result_planes.release_leaked_segments()
        if leaked:
            raise RuntimeError(
                "Leaked shared-memory result segments survived session "
                f"teardown: {leaked}"
            )
    if os.environ.get("BGLS_CHILD_AUDIT") != "1":
        return
    leaks = _audit_leaked_children()
    if leaks:
        raise RuntimeError(
            "Leaked worker processes survived session teardown:\n  "
            + "\n  ".join(leaks)
        )
