"""Tests for analysis utilities: distributions, overlap, XEB, histograms."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_histogram,
    empirical_distribution,
    fractional_overlap,
    linear_xeb,
    total_variation_distance,
)


class TestEmpiricalDistribution:
    def test_basic_counts(self):
        bits = np.array([[0, 0], [1, 1], [1, 1], [0, 1]])
        dist = empirical_distribution(bits, 2)
        np.testing.assert_allclose(dist, [0.25, 0.25, 0.0, 0.5])

    def test_normalization(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(100, 3))
        assert empirical_distribution(bits, 3).sum() == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            empirical_distribution(np.zeros((10, 3)), 2)


class TestFractionalOverlap:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5, 0.0, 0.0])
        assert fractional_overlap(p, p) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert fractional_overlap(p, q) == pytest.approx(0.0)

    def test_partial(self):
        p = np.array([0.75, 0.25])
        q = np.array([0.5, 0.5])
        assert fractional_overlap(p, q) == pytest.approx(0.75)

    def test_relation_to_tv(self):
        rng = np.random.default_rng(1)
        p = rng.dirichlet(np.ones(8))
        q = rng.dirichlet(np.ones(8))
        assert fractional_overlap(p, q) == pytest.approx(
            1.0 - total_variation_distance(p, q)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fractional_overlap(np.ones(2) / 2, np.ones(4) / 4)


class TestTotalVariation:
    def test_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            p = rng.dirichlet(np.ones(16))
            q = rng.dirichlet(np.ones(16))
            assert 0.0 <= total_variation_distance(p, q) <= 1.0

    def test_symmetry(self):
        p = np.array([0.3, 0.7])
        q = np.array([0.6, 0.4])
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )


class TestLinearXEB:
    def test_perfect_sampler_on_uniform(self):
        """Uniform ideal distribution gives XEB ~ 0 for any samples."""
        n = 3
        p_ideal = np.ones(2**n) / 2**n
        samples = np.array([[0, 0, 0], [1, 1, 1], [0, 1, 0]])
        assert linear_xeb(samples, p_ideal) == pytest.approx(0.0)

    def test_ideal_sampler_positive(self):
        rng = np.random.default_rng(3)
        n = 4
        p = rng.dirichlet(np.ones(2**n) * 0.3)
        outcomes = rng.choice(2**n, size=5000, p=p)
        samples = np.stack(
            [(outcomes >> (n - 1 - j)) & 1 for j in range(n)], axis=1
        )
        assert linear_xeb(samples, p) > 0.2


class TestAsciiHistogram:
    def test_renders(self):
        text = ascii_histogram([0.5, 0.25, 0.25, 0.0])
        assert "00 |" in text
        assert "0.5000" in text

    def test_min_prob_filter(self):
        text = ascii_histogram([0.9, 0.1], min_prob=0.5)
        assert "0.9000" in text
        assert "0.1000" not in text

    def test_custom_labels(self):
        text = ascii_histogram([1.0], labels=["everything"])
        assert "everything" in text
