"""Tests for the BGLS Simulator mechanics (modes, records, errors)."""

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.states import StateVectorSimulationState


def sv_simulator(qubits, seed=0, **kw):
    return bgls.Simulator(
        initial_state=StateVectorSimulationState(qubits),
        apply_op=bgls.act_on,
        compute_probability=born.compute_probability_state_vector,
        seed=seed,
        **kw,
    )


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(2)


@pytest.fixture
def ghz(qubits):
    return cirq.Circuit(
        cirq.H(qubits[0]),
        cirq.CNOT(qubits[0], qubits[1]),
        cirq.measure(*qubits, key="z"),
    )


class TestRun:
    def test_ghz_histogram_only_extremes(self, qubits, ghz):
        """Paper Fig. 1: GHZ sampling returns only 00 and 11."""
        result = sv_simulator(qubits).run(ghz, repetitions=500)
        hist = result.histogram("z")
        assert set(hist) <= {0, 3}
        assert 150 < hist[0] < 350

    def test_repetitions_shape(self, qubits, ghz):
        result = sv_simulator(qubits).run(ghz, repetitions=17)
        assert result.measurements["z"].shape == (17, 2)
        assert result.repetitions == 17

    def test_run_requires_measurement(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        with pytest.raises(ValueError, match="no measurements"):
            sv_simulator(qubits).run(circuit)

    def test_sample_alias(self, qubits, ghz):
        result = sv_simulator(qubits).sample(ghz, repetitions=5)
        assert result.repetitions == 5

    def test_invalid_repetitions(self, qubits, ghz):
        with pytest.raises(ValueError):
            sv_simulator(qubits).run(ghz, repetitions=0)

    def test_measurement_key_subset_of_qubits(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(qubits[1], key="only_q1"),
        )
        result = sv_simulator(qubits).run(circuit, repetitions=10)
        assert result.measurements["only_q1"].shape == (10, 1)

    def test_multiple_keys(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(qubits[0], key="a"),
            cirq.measure(qubits[1], key="b"),
        )
        result = sv_simulator(qubits).run(circuit, repetitions=50)
        np.testing.assert_array_equal(
            result.measurements["a"], result.measurements["b"]
        )

    def test_duplicate_key_rejected(self, qubits):
        circuit = cirq.Circuit(
            cirq.measure(qubits[0], key="m"), cirq.measure(qubits[1], key="m")
        )
        with pytest.raises(ValueError, match="Duplicate measurement key"):
            sv_simulator(qubits).run(circuit)

    def test_circuit_qubits_must_be_in_register(self, qubits):
        stranger = cirq.LineQubit(99)
        circuit = cirq.Circuit(cirq.H(stranger), cirq.measure(stranger, key="m"))
        with pytest.raises(ValueError, match="not in state register"):
            sv_simulator(qubits).run(circuit)

    def test_initial_state_not_consumed(self, qubits, ghz):
        sim = sv_simulator(qubits)
        sim.run(ghz, repetitions=10)
        result2 = sim.run(ghz, repetitions=10)  # same initial state reused
        assert result2.repetitions == 10
        np.testing.assert_allclose(
            sim.initial_state.state_vector()[0], 1.0
        )

    def test_seeded_reproducibility(self, qubits, ghz):
        r1 = sv_simulator(qubits, seed=42).run(ghz, repetitions=20)
        r2 = sv_simulator(qubits, seed=42).run(ghz, repetitions=20)
        assert r1 == r2

    def test_qubit_not_in_circuit_stays_zero(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(cirq.X(qs[0]), cirq.measure(*qs, key="m"))
        result = sv_simulator(qs).run(circuit, repetitions=5)
        np.testing.assert_array_equal(
            result.measurements["m"], [[1, 0, 0]] * 5
        )


class TestParameterResolution:
    def test_run_with_resolver(self, qubits):
        theta = cirq.Symbol("theta")
        circuit = cirq.Circuit(
            cirq.Rx(theta).on(qubits[0]), cirq.measure(qubits[0], key="m")
        )
        import math

        result = sv_simulator(qubits).run(
            circuit, repetitions=20, param_resolver={"theta": math.pi}
        )
        assert result.histogram("m") == {1: 20}

    def test_unresolved_raises(self, qubits):
        circuit = cirq.Circuit(
            cirq.Rx(cirq.Symbol("t")).on(qubits[0]),
            cirq.measure(qubits[0], key="m"),
        )
        with pytest.raises(ValueError):
            sv_simulator(qubits).run(circuit, repetitions=1)


class TestParallelVsTrajectories:
    def test_unitary_circuit_uses_parallel_mode(self, qubits, ghz, monkeypatch):
        sim = sv_simulator(qubits)
        called = {}
        original = sim._run_parallel

        def spy(*args, **kw):
            called["parallel"] = True
            return original(*args, **kw)

        monkeypatch.setattr(sim, "_run_parallel", spy)
        sim.run(ghz, repetitions=5)
        assert called.get("parallel")

    def test_noisy_circuit_uses_trajectories(self, qubits, monkeypatch):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.depolarize(0.1)(qubits[0]),
            cirq.measure(*qubits, key="m"),
        )
        sim = sv_simulator(qubits)
        called = {}
        original = sim._run_trajectories

        def spy(*args, **kw):
            called["traj"] = True
            return original(*args, **kw)

        monkeypatch.setattr(sim, "_run_trajectories", spy)
        sim.run(circuit, repetitions=5)
        assert called.get("traj")

    def test_mid_circuit_measurement_uses_trajectories(self, qubits, monkeypatch):
        circuit = cirq.Circuit(
            cirq.measure(qubits[0], key="early"),
            cirq.H(qubits[0]),
            cirq.measure(qubits[0], key="late"),
        )
        sim = sv_simulator(qubits)
        called = {}
        original = sim._run_trajectories

        def spy(*args, **kw):
            called["traj"] = True
            return original(*args, **kw)

        monkeypatch.setattr(sim, "_run_trajectories", spy)
        sim.run(circuit, repetitions=5)
        assert called.get("traj")

    def test_stochastic_apply_op_flag_forces_trajectories(self, qubits, monkeypatch):
        def stochastic_apply(op, state):
            bgls.act_on(op, state)

        stochastic_apply._bgls_stochastic_ = True
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            stochastic_apply,
            born.compute_probability_state_vector,
            seed=0,
        )
        called = {}
        original = sim._run_trajectories

        def spy(*args, **kw):
            called["traj"] = True
            return original(*args, **kw)

        monkeypatch.setattr(sim, "_run_trajectories", spy)
        circuit = cirq.Circuit(cirq.H(qubits[0]), cirq.measure(*qubits, key="m"))
        sim.run(circuit, repetitions=3)
        assert called.get("traj")

    def test_modes_agree_statistically(self, qubits):
        """The same circuit sampled via both modes gives the same stats."""
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="z"),
        )
        par = sv_simulator(qubits, seed=0).run(circuit, repetitions=2000)

        def tagged(op, state):
            bgls.act_on(op, state)

        tagged._bgls_stochastic_ = True
        traj_sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            tagged,
            born.compute_probability_state_vector,
            seed=1,
        )
        traj = traj_sim.run(circuit, repetitions=2000)
        p_par = par.histogram("z")[0] / 2000
        p_traj = traj.histogram("z")[0] / 2000
        assert abs(p_par - p_traj) < 0.07


class TestSampleBitstrings:
    def test_shape_and_values(self, qubits, ghz):
        bits = sv_simulator(qubits).sample_bitstrings(ghz, repetitions=25)
        assert bits.shape == (25, 2)
        assert set(np.unique(bits)) <= {0, 1}

    def test_measurement_free_circuit_ok(self, qubits):
        circuit = cirq.Circuit(cirq.X(qubits[0]))
        bits = sv_simulator(qubits).sample_bitstrings(circuit, repetitions=4)
        np.testing.assert_array_equal(bits, [[1, 0]] * 4)


class TestCustomComputeProbability:
    def test_user_function_loop_fallback(self, qubits, ghz):
        """A hand-written compute_probability exercises the generic path."""
        calls = {"n": 0}

        def my_probability(state, bitstring):
            calls["n"] += 1
            return float(
                abs(state.tensor[tuple(int(b) for b in bitstring)]) ** 2
            )

        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            my_probability,
            seed=0,
        )
        result = sim.run(ghz, repetitions=100)
        assert set(result.histogram("z")) <= {0, 3}
        assert calls["n"] > 0  # loop fallback was used

    def test_explicit_candidate_function(self, qubits, ghz):
        sim = bgls.Simulator(
            StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            compute_candidate_probabilities=born.candidates_state_vector,
            seed=0,
        )
        result = sim.run(ghz, repetitions=50)
        assert set(result.histogram("z")) <= {0, 3}


class TestSkipDiagonalUpdates:
    def test_distribution_unchanged(self):
        qs = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            [cirq.H(q) for q in qs],
            cirq.CZ(qs[0], qs[1]),
            cirq.T(qs[1]),
            cirq.Z(qs[2]),
            cirq.CNOT(qs[1], qs[2]),
            cirq.measure(*qs, key="m"),
        )
        plain = sv_simulator(qs, seed=3).run(circuit, repetitions=3000)
        skipping = sv_simulator(qs, seed=4, skip_diagonal_updates=True).run(
            circuit, repetitions=3000
        )
        p1 = np.array([plain.histogram("m").get(i, 0) for i in range(8)]) / 3000
        p2 = np.array(
            [skipping.histogram("m").get(i, 0) for i in range(8)]
        ) / 3000
        assert 0.5 * np.abs(p1 - p2).sum() < 0.06
