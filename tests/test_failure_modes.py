"""Failure-injection tests: every subsystem must fail loudly and precisely.

These tests target error paths not covered by the per-module suites —
inconsistent user-supplied probability functions, broken channel sets,
malformed tensors, and API misuse that silent acceptance would turn into
wrong physics.
"""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.mps import MPSState
from repro.protocols import act_on
from repro.sampler import Simulator
from repro.states import StateVectorSimulationState
from repro.tensornet import Tensor, TensorNetwork


class TestSimulatorMisuse:
    def test_zero_probability_function_reported(self):
        """A compute_probability returning 0 everywhere is inconsistent."""
        qs = cirq.LineQubit.range(1)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=lambda state, bits: 0.0,
            seed=0,
        )
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.measure(qs[0], key="z"))
        with pytest.raises(ValueError, match="vanished"):
            sim.run(circuit, repetitions=1)

    def test_nan_probability_function_reported(self):
        qs = cirq.LineQubit.range(1)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=lambda state, bits: float("nan"),
            seed=0,
        )
        circuit = cirq.Circuit(cirq.H.on(qs[0]), cirq.measure(qs[0], key="z"))
        with pytest.raises(ValueError, match="vanished"):
            sim.run(circuit, repetitions=1)

    def test_unresolved_parameters_rejected(self):
        qs = cirq.LineQubit.range(1)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
        )
        circuit = cirq.Circuit(
            cirq.Rz(cirq.Symbol("t")).on(qs[0]), cirq.measure(qs[0], key="z")
        )
        with pytest.raises(ValueError, match="unresolved"):
            sim.run(circuit, repetitions=1)

    def test_run_without_measurements_rejected(self):
        qs = cirq.LineQubit.range(1)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qs),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
        )
        with pytest.raises(ValueError, match="no measurements"):
            sim.run(cirq.Circuit(cirq.X.on(qs[0])), repetitions=1)


class TestBrokenChannels:
    def test_annihilating_kraus_set_rejected(self):
        """A 'channel' whose operators all map the state to zero."""

        class ZeroChannel(channels.KrausChannel):
            def _kraus_(self):
                return [np.zeros((2, 2), dtype=np.complex128)]

        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs, seed=0)
        with pytest.raises(ValueError, match="annihilated"):
            act_on(ZeroChannel(0.5).on(qs[0]), state)

    def test_channel_probability_validated(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            channels.bit_flip(1.2)
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            channels.depolarize(-0.1)

    def test_gate_without_unitary_or_kraus_rejected(self):
        class Opaque(cirq.Gate):
            def num_qubits(self):
                return 1

        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs)
        with pytest.raises(TypeError, match="no unitary or Kraus"):
            act_on(Opaque().on(qs[0]), state)


class TestMPSMisuse:
    def test_three_qubit_gate_rejected(self):
        qs = cirq.LineQubit.range(3)
        state = MPSState(qs)
        with pytest.raises(ValueError, match="1- and 2-qubit"):
            state.apply_unitary(np.eye(8), [0, 1, 2])

    def test_project_zero_probability_outcome(self):
        qs = cirq.LineQubit.range(1)
        state = MPSState(qs)  # |0>
        with pytest.raises(ValueError, match="zero-probability"):
            state.project([0], [1])

    def test_renormalize_zero_state_rejected(self):
        qs = cirq.LineQubit.range(1)
        state = MPSState(qs)
        state._apply_one_qubit(np.zeros((2, 2), dtype=np.complex128), 0)
        with pytest.raises(ValueError, match="zero state"):
            state.renormalize()


class TestTensorNetworkMisuse:
    def test_triple_index_rejected(self):
        t1 = Tensor(np.zeros(2), ("a",))
        t2 = Tensor(np.zeros(2), ("a",))
        t3 = Tensor(np.zeros(2), ("a",))
        with pytest.raises(ValueError, match="more than twice"):
            TensorNetwork([t1, t2, t3])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError, match="Empty"):
            TensorNetwork([]).contract()

    def test_tensor_index_count_mismatch(self):
        with pytest.raises(ValueError, match="index names"):
            Tensor(np.zeros((2, 2)), ("a",))

    def test_tensor_duplicate_index_names(self):
        with pytest.raises(ValueError, match="Duplicate"):
            Tensor(np.zeros((2, 2)), ("a", "a"))

    def test_isel_out_of_range(self):
        t = Tensor(np.zeros(2), ("a",))
        with pytest.raises(IndexError, match="out of range"):
            t.isel({"a": 5})

    def test_isel_unknown_index(self):
        t = Tensor(np.zeros(2), ("a",))
        with pytest.raises(KeyError, match="no indices"):
            t.isel({"b": 0})


class TestStateVectorMisuse:
    def test_unnormalized_initial_state_rejected(self):
        qs = cirq.LineQubit.range(1)
        with pytest.raises(ValueError, match="not normalized"):
            StateVectorSimulationState(qs, initial_state=np.array([1.0, 1.0]))

    def test_wrong_length_initial_vector_rejected(self):
        qs = cirq.LineQubit.range(2)
        with pytest.raises(ValueError, match="amplitudes"):
            StateVectorSimulationState(qs, initial_state=np.array([1.0, 0.0]))

    def test_project_zero_probability_rejected(self):
        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs)
        with pytest.raises(ValueError, match="zero-probability"):
            state.project([0], [1])

    def test_duplicate_register_qubits_rejected(self):
        q = cirq.LineQubit(0)
        with pytest.raises(ValueError, match="Duplicate"):
            StateVectorSimulationState([q, q])


class TestCircuitMisuse:
    def test_overlapping_moment_rejected(self):
        q = cirq.LineQubit(0)
        with pytest.raises(ValueError, match="Overlapping"):
            cirq.Moment([cirq.X.on(q), cirq.Y.on(q)])

    def test_gate_arity_mismatch_rejected(self):
        qs = cirq.LineQubit.range(2)
        with pytest.raises(ValueError, match="acts on"):
            cirq.CNOT.on(qs[0])

    def test_duplicate_operation_qubits_rejected(self):
        q = cirq.LineQubit(0)
        with pytest.raises(ValueError, match="Duplicate"):
            cirq.CNOT.on(q, q)

    def test_qasm_garbage_rejected(self):
        with pytest.raises(cirq.QasmError):
            cirq.circuit_from_qasm("OPENQASM 3.0;")
