"""Tests for OpenQASM 2.0 import/export (paper Sec. 3.2.4)."""

import math

import numpy as np
import pytest

from repro import circuits as cirq
from repro.circuits import QasmError, circuit_from_qasm, circuit_to_qasm


def state_of(circuit):
    return circuit.without_measurements().final_state_vector(
        qubit_order=circuit.all_qubits()
    )


class TestImport:
    def test_bell_pair(self):
        qasm = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        """
        circuit = circuit_from_qasm(qasm)
        psi = state_of(circuit)
        np.testing.assert_allclose(
            np.abs(psi) ** 2, [0.5, 0, 0, 0.5], atol=1e-9
        )
        assert circuit.all_measurement_keys() == ["c"]

    def test_rotations(self):
        qasm = """
        OPENQASM 2.0;
        qreg q[1];
        rx(pi/2) q[0];
        rz(0.5) q[0];
        """
        circuit = circuit_from_qasm(qasm)
        ops = list(circuit.all_operations())
        assert len(ops) == 2
        u = circuit.unitary()
        np.testing.assert_allclose(u @ u.conj().T, np.eye(2), atol=1e-9)

    def test_angle_expressions(self):
        qasm = "OPENQASM 2.0; qreg q[1]; rz(2*pi/4) q[0];"
        circuit = circuit_from_qasm(qasm)
        gate = next(circuit.all_operations()).gate
        assert float(gate.exponent) * math.pi == pytest.approx(math.pi / 2)

    def test_whole_register_broadcast(self):
        qasm = "OPENQASM 2.0; qreg q[3]; h q;"
        circuit = circuit_from_qasm(qasm)
        assert circuit.num_operations() == 3

    def test_comments_and_barriers_ignored(self):
        qasm = """
        OPENQASM 2.0;
        // a comment
        qreg q[1];
        barrier q;
        x q[0]; // trailing comment
        """
        circuit = circuit_from_qasm(qasm)
        assert circuit.num_operations() == 1

    def test_all_fixed_gates(self):
        qasm = """
        OPENQASM 2.0; qreg q[3];
        id q[0]; h q[0]; x q[0]; y q[0]; z q[0]; s q[0]; sdg q[0];
        t q[0]; tdg q[0]; cx q[0], q[1]; cz q[0], q[1]; swap q[0], q[1];
        ccx q[0], q[1], q[2]; cswap q[0], q[1], q[2];
        """
        circuit = circuit_from_qasm(qasm)
        assert circuit.num_operations() == 14

    def test_missing_header(self):
        with pytest.raises(QasmError, match="header"):
            circuit_from_qasm("qreg q[1]; h q[0];")

    def test_unknown_gate(self):
        with pytest.raises(QasmError, match="Unsupported gate"):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; frobnicate q[0];")

    def test_unknown_register(self):
        with pytest.raises(QasmError, match="Unknown quantum register"):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; h r[0];")

    def test_out_of_range_index(self):
        with pytest.raises(QasmError, match="out of range"):
            circuit_from_qasm("OPENQASM 2.0; qreg q[1]; h q[5];")


class TestExportRoundtrip:
    def test_ghz_roundtrip(self):
        q = cirq.LineQubit.range(3)
        circuit = cirq.Circuit(
            cirq.H(q[0]),
            cirq.CNOT(q[0], q[1]),
            cirq.CNOT(q[1], q[2]),
            cirq.measure(*q, key="z"),
        )
        back = circuit_from_qasm(circuit_to_qasm(circuit))
        np.testing.assert_allclose(state_of(circuit), state_of(back), atol=1e-9)
        assert back.all_measurement_keys() == ["z"]

    def test_rotation_roundtrip(self):
        q = cirq.LineQubit(0)
        circuit = cirq.Circuit(
            cirq.Rz(0.7).on(q), cirq.Rx(1.1).on(q), cirq.Ry(-0.4).on(q)
        )
        back = circuit_from_qasm(circuit_to_qasm(circuit))
        a, b = state_of(circuit), state_of(back)
        inner = np.vdot(a, b)
        # Equal up to the global phase dropped by rx/ry/rz serialization.
        assert abs(abs(inner) - 1.0) < 1e-9

    def test_random_circuit_roundtrip_distribution(self):
        circuit = cirq.generate_random_circuit(4, 8, random_state=5)
        back = circuit_from_qasm(circuit_to_qasm(circuit))
        p1 = np.abs(state_of(circuit)) ** 2
        p2 = np.abs(state_of(back)) ** 2
        np.testing.assert_allclose(p1, p2, atol=1e-9)

    def test_qasm_declares_registers(self):
        q = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(cirq.H(q[0]), cirq.measure(*q, key="out"))
        text = circuit_to_qasm(circuit)
        assert "qreg q[2];" in text
        assert "creg out[2];" in text
