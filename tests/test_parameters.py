"""Tests for symbolic parameters and resolution."""

import math

import pytest

from repro.circuits import ParamResolver, Symbol, is_parameterized
from repro.circuits.parameters import resolve_value


class TestSymbol:
    def test_identity(self):
        s = Symbol("t")
        assert s.value(0.7) == pytest.approx(0.7)

    def test_scale(self):
        s = Symbol("t") * 3
        assert s.value(2.0) == pytest.approx(6.0)

    def test_rmul(self):
        s = 3 * Symbol("t")
        assert s.value(2.0) == pytest.approx(6.0)

    def test_divide(self):
        s = Symbol("t") / math.pi
        assert s.value(math.pi) == pytest.approx(1.0)

    def test_add_sub(self):
        s = Symbol("t") + 1.5
        assert s.value(1.0) == pytest.approx(2.5)
        s = Symbol("t") - 0.5
        assert s.value(1.0) == pytest.approx(0.5)

    def test_neg(self):
        s = -Symbol("t")
        assert s.value(2.0) == pytest.approx(-2.0)

    def test_affine_composition(self):
        s = (2 * Symbol("t") + 1) / 2
        assert s.value(3.0) == pytest.approx(3.5)

    def test_equality_hash(self):
        assert Symbol("a") == Symbol("a")
        assert Symbol("a") != Symbol("b")
        assert Symbol("a") * 2 != Symbol("a")
        assert hash(Symbol("a")) == hash(Symbol("a"))

    def test_is_parameterized(self):
        assert is_parameterized(Symbol("x"))
        assert not is_parameterized(1.0)


class TestParamResolver:
    def test_resolves_by_name(self):
        r = ParamResolver({"t": 0.25})
        assert r.value_of(Symbol("t")) == pytest.approx(0.25)

    def test_resolves_by_symbol_key(self):
        r = ParamResolver({Symbol("t"): 0.25})
        assert r.value_of(Symbol("t")) == pytest.approx(0.25)

    def test_resolves_affine(self):
        r = ParamResolver({"t": 2.0})
        assert r.value_of(3 * Symbol("t") + 1) == pytest.approx(7.0)

    def test_numbers_pass_through(self):
        r = ParamResolver({})
        assert r.value_of(1.5) == pytest.approx(1.5)

    def test_unresolved_raises(self):
        r = ParamResolver({"other": 1.0})
        with pytest.raises(ValueError, match="Unresolved"):
            r.value_of(Symbol("t"))

    def test_contains(self):
        r = ParamResolver({"t": 1.0})
        assert "t" in r
        assert "u" not in r


def test_resolve_value_without_resolver_keeps_symbol():
    s = Symbol("x")
    assert resolve_value(s, None) is s
    assert resolve_value(2.0, None) == 2.0


def test_resolve_value_with_resolver():
    assert resolve_value(Symbol("x"), ParamResolver({"x": 4})) == pytest.approx(4.0)
