"""End-to-end integration tests spanning multiple subsystems."""

import math

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import (
    empirical_distribution,
    fractional_overlap,
    total_variation_distance,
)
from repro.apps import ghz_circuit, qaoa_maxcut_circuit, random_ghz_circuit


class TestPaperQuickstart:
    """The exact flow of the paper's Sec. 3.1 snippet."""

    def test_core_snippet(self):
        nqubits = 2
        qubits = cirq.LineQubit.range(nqubits)
        circuit = cirq.Circuit(
            cirq.H.on(qubits[0]),
            cirq.CNOT.on(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="z"),
        )
        simulator = bgls.Simulator(
            initial_state=bgls.StateVectorSimulationState(
                qubits=qubits, initial_state=0
            ),
            apply_op=bgls.act_on,
            compute_probability=born.compute_probability_state_vector,
            seed=0,
        )
        results = simulator.run(circuit, repetitions=10)
        assert results.repetitions == 10
        assert set(results.histogram("z")) <= {0, 3}


class TestCrossBackendAgreement:
    """Same Clifford circuit, four backends, one distribution."""

    def test_all_backends_sample_same_distribution(self):
        qubits = cirq.LineQubit.range(4)
        circuit = cirq.random_clifford_circuit(qubits, 15, random_state=21)
        ideal = (
            np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
        )
        reps = 2500
        backends = {
            "sv": bgls.Simulator(
                bgls.StateVectorSimulationState(qubits), bgls.act_on,
                born.compute_probability_state_vector, seed=1),
            "dm": bgls.Simulator(
                bgls.DensityMatrixSimulationState(qubits), bgls.act_on,
                born.compute_probability_density_matrix, seed=2),
            "ch": bgls.Simulator(
                bgls.StabilizerChFormSimulationState(qubits), bgls.act_on,
                born.compute_probability_stabilizer_state, seed=3),
            "mps": bgls.Simulator(
                bgls.MPSState(qubits), bgls.act_on,
                born.compute_probability_mps, seed=4),
        }
        for name, sim in backends.items():
            bits = sim.sample_bitstrings(circuit, repetitions=reps)
            tv = total_variation_distance(
                empirical_distribution(bits, 4), ideal
            )
            assert tv < 0.07, f"{name} backend TV={tv}"


class TestOptimizedCircuitSampling:
    def test_optimize_then_sample_same_distribution(self):
        qubits = cirq.LineQubit.range(4)
        circuit = cirq.generate_random_circuit(
            qubits, 25, op_density=0.9, random_state=31
        )
        circuit.append(cirq.measure(*qubits, key="m"))
        optimized = cirq.optimize_for_bgls(circuit)
        assert optimized.num_operations() < circuit.num_operations()
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits), bgls.act_on,
            born.compute_probability_state_vector, seed=0)
        p_orig = empirical_distribution(
            sim.run(circuit, repetitions=2500).measurements["m"], 4)
        p_opt = empirical_distribution(
            sim.run(optimized, repetitions=2500).measurements["m"], 4)
        assert total_variation_distance(p_orig, p_opt) < 0.07


class TestQasmToSampling:
    def test_import_sample_pipeline(self):
        qasm = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        cx q[0], q[1];
        cx q[1], q[2];
        measure q -> c;
        """
        circuit = cirq.circuit_from_qasm(qasm)
        qubits = circuit.all_qubits()
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits), bgls.act_on,
            born.compute_probability_state_vector, seed=0)
        result = sim.run(circuit, repetitions=200)
        assert set(result.histogram("c")) <= {0, 7}


class TestGHZScaling:
    @pytest.mark.parametrize("width", [2, 5, 9])
    def test_linear_and_random_ghz_same_distribution(self, width):
        qubits = cirq.LineQubit.range(width)
        linear = ghz_circuit(qubits, measure_key=None)
        random_order = random_ghz_circuit(qubits, random_state=width)
        p1 = np.abs(linear.final_state_vector(qubit_order=qubits)) ** 2
        p2 = np.abs(random_order.final_state_vector(qubit_order=qubits)) ** 2
        np.testing.assert_allclose(p1, p2, atol=1e-9)

    def test_mps_bgls_samples_wide_ghz(self):
        """A 16-qubit GHZ chain is trivial for MPS (chi = 2)."""
        width = 16
        qubits = cirq.LineQubit.range(width)
        circuit = ghz_circuit(qubits, measure_key=None)
        sim = bgls.Simulator(
            bgls.MPSState(qubits), bgls.act_on,
            born.compute_probability_mps, seed=0)
        bits = sim.sample_bitstrings(circuit, repetitions=100)
        sums = set(bits.sum(axis=1).tolist())
        assert sums <= {0, width}


class TestParametricSweep:
    def test_rx_angle_sweep_matches_born_rule(self):
        """Sampled P(1) follows sin^2(theta/2) across a parameter sweep."""
        qubits = cirq.LineQubit.range(1)
        theta = cirq.Symbol("theta")
        template = cirq.Circuit(
            cirq.Rx(theta).on(qubits[0]), cirq.measure(qubits[0], key="m")
        )
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits), bgls.act_on,
            born.compute_probability_state_vector, seed=0)
        for angle in (0.0, math.pi / 3, math.pi / 2, math.pi):
            result = sim.run(
                template, repetitions=2000, param_resolver={"theta": angle}
            )
            p1 = result.measurements["m"].mean()
            assert abs(p1 - math.sin(angle / 2) ** 2) < 0.05


class TestQAOAAcrossBackends:
    def test_sv_and_mps_qaoa_energies_agree(self):
        import networkx as nx

        graph = nx.Graph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        qubits = cirq.LineQubit.range(4)
        circuit = qaoa_maxcut_circuit(graph, 0.6, 0.4)
        from repro.apps import average_cut

        sv_sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits), bgls.act_on,
            born.compute_probability_state_vector, seed=0)
        mps_sim = bgls.Simulator(
            bgls.MPSState(qubits), bgls.act_on,
            born.compute_probability_mps, seed=1)
        e_sv = average_cut(graph, sv_sim.sample_bitstrings(circuit, 1500))
        e_mps = average_cut(graph, mps_sim.sample_bitstrings(circuit, 1500))
        assert abs(e_sv - e_mps) < 0.25


class TestNearCliffordOverlapPipeline:
    def test_full_fig4_style_pipeline(self):
        qubits = cirq.LineQubit.range(4)
        circuit = cirq.random_clifford_t_circuit(
            qubits, 15, t_density=0.2, random_state=2
        )
        ideal = np.abs(circuit.final_state_vector(qubit_order=qubits)) ** 2
        sim = bgls.Simulator(
            bgls.StabilizerChFormSimulationState(qubits),
            bgls.act_on_near_clifford,
            born.compute_probability_stabilizer_state,
            seed=0,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=800)
        overlap = fractional_overlap(empirical_distribution(bits, 4), ideal)
        assert 0.3 < overlap <= 1.0
