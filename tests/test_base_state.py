"""Tests for shared simulation-state machinery."""

import numpy as np
import pytest

from repro import circuits as cirq
from repro.states import StateVectorSimulationState, bits_to_index, index_to_bits


class TestBitConversions:
    def test_bits_to_index_big_endian(self):
        assert bits_to_index([1, 0, 1]) == 5
        assert bits_to_index([0, 0, 0]) == 0
        assert bits_to_index([1, 1, 1, 1]) == 15

    def test_index_to_bits(self):
        assert index_to_bits(5, 3) == (1, 0, 1)
        assert index_to_bits(0, 2) == (0, 0)

    def test_roundtrip(self):
        for width in (1, 3, 6):
            for idx in range(2**width):
                assert bits_to_index(index_to_bits(idx, width)) == idx


class TestRegister:
    def test_axes_of(self):
        qs = cirq.LineQubit.range(3)
        state = StateVectorSimulationState(qs)
        assert state.axes_of([qs[2], qs[0]]) == [2, 0]

    def test_axes_of_unknown_qubit(self):
        qs = cirq.LineQubit.range(2)
        state = StateVectorSimulationState(qs)
        with pytest.raises(ValueError, match="not in state register"):
            state.axes_of([cirq.LineQubit(9)])

    def test_num_qubits(self):
        state = StateVectorSimulationState(cirq.LineQubit.range(4))
        assert state.num_qubits == 4

    def test_rng_seeding(self):
        qs = cirq.LineQubit.range(1)
        a = StateVectorSimulationState(qs, seed=7)
        b = StateVectorSimulationState(qs, seed=7)
        a.apply_unitary(np.eye(2), [0])
        assert a.rng.integers(1000) == b.rng.integers(1000)

    def test_shared_generator(self):
        rng = np.random.default_rng(0)
        state = StateVectorSimulationState(cirq.LineQubit.range(1), seed=rng)
        assert state.rng is rng


class TestActOnDispatch:
    def test_measurement_dispatch(self):
        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs, initial_state=1, seed=0)
        state._act_on_(cirq.measure(qs[0], key="m"))
        assert state.probability_of([1]) == pytest.approx(1.0)

    def test_unsupported_operation(self):
        class WeirdGate(cirq.Gate):
            def num_qubits(self):
                return 1

        qs = cirq.LineQubit.range(1)
        state = StateVectorSimulationState(qs)
        with pytest.raises(TypeError, match="no unitary or Kraus"):
            state._act_on_(WeirdGate().on(qs[0]))
