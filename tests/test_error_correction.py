"""Tests for the 3-qubit repetition code (repro.apps.error_correction)."""

import numpy as np
import pytest

from repro import apps, born
from repro import circuits as cirq
from repro.protocols import act_on
from repro.sampler import Simulator, act_on_with_pauli_noise
from repro.states import (
    StabilizerChFormSimulationState,
    StateVectorSimulationState,
)


def run_code(p, reps, seed=0, backend="sv", **circuit_kwargs):
    circuit = apps.repetition_code_circuit(p, **circuit_kwargs)
    qubits = cirq.LineQubit.range(
        5 if circuit_kwargs.get("with_syndrome", True) else 3
    )
    if backend == "sv":
        sim = Simulator(
            initial_state=StateVectorSimulationState(qubits),
            apply_op=lambda op, s: act_on(op, s),
            compute_probability=born.compute_probability_state_vector,
            seed=seed,
        )
    else:
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=seed,
        )
    return sim.run(circuit, repetitions=reps)


class TestDecoders:
    def test_majority_vote(self):
        assert apps.majority_decode([0, 0, 0]) == 0
        assert apps.majority_decode([1, 0, 1]) == 1
        assert apps.majority_decode([0, 1, 0]) == 0

    @pytest.mark.parametrize(
        "flipped,syndrome",
        [(None, (0, 0)), (0, (1, 0)), (1, (1, 1)), (2, (0, 1))],
    )
    def test_single_error_always_corrected(self, flipped, syndrome):
        bits = [0, 0, 0]
        if flipped is not None:
            bits[flipped] = 1
        assert apps.decode_with_syndrome(bits, syndrome) == 0

    def test_double_error_defeats_code(self):
        # q0 and q1 flipped: syndrome (0,1) points at q2 (wrongly).
        assert apps.decode_with_syndrome([1, 1, 0], (0, 1)) == 1


class TestTheory:
    def test_rate_formula_limits(self):
        assert apps.theoretical_logical_error_rate(0.0) == 0.0
        assert apps.theoretical_logical_error_rate(1.0) == pytest.approx(1.0)
        assert apps.theoretical_logical_error_rate(0.5) == pytest.approx(0.5)

    def test_code_helps_below_half(self):
        for p in (0.01, 0.1, 0.3):
            assert apps.theoretical_logical_error_rate(p) < p

    def test_syndrome_distribution_normalized(self):
        for p in (0.0, 0.1, 0.5, 0.9):
            dist = apps.syndrome_distribution(p)
            assert dist.sum() == pytest.approx(1.0)

    def test_syndrome_distribution_noiseless(self):
        np.testing.assert_allclose(
            apps.syndrome_distribution(0.0), [1, 0, 0, 0]
        )


class TestCircuit:
    def test_noiseless_run_is_perfect(self):
        result = run_code(0.0, reps=100, seed=1)
        assert apps.logical_error_rate(result) == 0.0
        assert np.all(result.measurements["syndrome"] == 0)

    def test_logical_one_roundtrip(self):
        result = run_code(0.0, reps=50, seed=2, logical_one=True)
        assert apps.logical_error_rate(result, encoded=1) == 0.0
        assert np.all(result.measurements["data"] == 1)

    def test_without_syndrome_register(self):
        result = run_code(0.1, reps=200, seed=3, with_syndrome=False)
        assert "syndrome" not in result.measurements
        rate = apps.logical_error_rate(result, use_syndrome=False)
        assert rate < 0.1

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            apps.repetition_code_circuit(1.5)

    def test_logical_error_rate_matches_theory_dense(self):
        p = 0.2
        result = run_code(p, reps=4000, seed=4)
        rate = apps.logical_error_rate(result)
        assert rate == pytest.approx(
            apps.theoretical_logical_error_rate(p), abs=0.02
        )

    def test_logical_error_rate_matches_theory_stabilizer(self):
        p = 0.15
        result = run_code(p, reps=4000, seed=5, backend="stab")
        rate = apps.logical_error_rate(result)
        assert rate == pytest.approx(
            apps.theoretical_logical_error_rate(p), abs=0.02
        )

    def test_syndrome_statistics_match_theory(self):
        p = 0.25
        result = run_code(p, reps=6000, seed=6, backend="stab")
        syndromes = result.measurements["syndrome"]
        hist = np.zeros(4)
        for s01, s12 in syndromes:
            hist[2 * int(s01) + int(s12)] += 1
        hist /= hist.sum()
        np.testing.assert_allclose(
            hist, apps.syndrome_distribution(p), atol=0.02
        )

    def test_majority_and_syndrome_decoders_agree_in_rate(self):
        p = 0.2
        result = run_code(p, reps=3000, seed=7)
        with_syn = apps.logical_error_rate(result, use_syndrome=True)
        majority = apps.logical_error_rate(result, use_syndrome=False)
        assert with_syn == pytest.approx(majority, abs=0.01)
