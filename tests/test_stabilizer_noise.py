"""Tests for stochastic-Pauli noise on stabilizer states.

The ground truth for every comparison is the exact density-matrix
evolution of the same noisy circuit.
"""

import numpy as np
import pytest

from repro import born
from repro import circuits as cirq
from repro.circuits import channels
from repro.protocols import act_on
from repro.sampler import (
    Simulator,
    act_on_near_clifford_with_pauli_noise,
    act_on_with_pauli_noise,
)
from repro.sampler.stabilizer_noise import _pauli_mixture
from repro.states import (
    CliffordTableauSimulationState,
    DensityMatrixSimulationState,
    StabilizerChFormSimulationState,
)


def exact_diagonal(circuit, qubits):
    rho = DensityMatrixSimulationState(qubits, seed=0)
    for op in circuit.without_measurements().all_operations():
        act_on(op, rho)
    return rho.diagonal_probabilities()


def histogram(bits, n):
    h = np.zeros(2**n)
    for row in bits:
        h[int("".join(str(b) for b in row), 2)] += 1
    return h / len(bits)


def noisy_ghz(qubits, p=0.15):
    circuit = cirq.Circuit(cirq.H.on(qubits[0]))
    for a, b in zip(qubits, qubits[1:]):
        circuit.append(cirq.CNOT.on(a, b))
        circuit.append(channels.depolarize(p).on(b))
    circuit.append(cirq.measure(*qubits, key="z"))
    return circuit


class TestPauliMixture:
    def test_bit_flip_mixture(self):
        mix = _pauli_mixture(channels.bit_flip(0.2))
        assert mix == [(0.8, "I"), (0.2, "X")]

    def test_phase_flip_mixture(self):
        mix = _pauli_mixture(channels.phase_flip(0.3))
        assert mix == [(0.7, "I"), (0.3, "Z")]

    def test_depolarize_mixture_sums_to_one(self):
        mix = _pauli_mixture(channels.depolarize(0.3))
        assert sum(w for w, _ in mix) == pytest.approx(1.0)
        assert [name for _, name in mix] == ["I", "X", "Y", "Z"]

    def test_non_pauli_channel_is_none(self):
        assert _pauli_mixture(channels.amplitude_damp(0.1)) is None

    def test_unitary_gate_is_none(self):
        assert _pauli_mixture(cirq.X) is None


class TestNoisyCliffordSampling:
    @pytest.mark.parametrize(
        "state_cls",
        [StabilizerChFormSimulationState, CliffordTableauSimulationState],
    )
    def test_noisy_ghz_matches_density_matrix(self, state_cls):
        n = 3
        qubits = cirq.LineQubit.range(n)
        circuit = noisy_ghz(qubits)
        exact = exact_diagonal(circuit, qubits)

        compute = (
            born.compute_probability_stabilizer_state
            if state_cls is StabilizerChFormSimulationState
            else born.compute_probability_tableau
        )
        sim = Simulator(
            initial_state=state_cls(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=compute,
            seed=3,
        )
        reps = 3000
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        tv = 0.5 * np.abs(histogram(bits, n) - exact).sum()
        assert tv < 0.05

    def test_bit_flip_on_deterministic_circuit(self):
        qubits = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            channels.bit_flip(0.25).on(qubits[0]),
            cirq.measure(*qubits, key="z"),
        )
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=5,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=4000)
        assert np.mean(bits) == pytest.approx(0.25, abs=0.03)

    def test_phase_flip_invisible_in_z_basis(self):
        qubits = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            channels.phase_flip(0.5).on(qubits[0]),
            cirq.measure(*qubits, key="z"),
        )
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=6,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=200)
        assert np.all(bits == 0)

    def test_amplitude_damping_still_rejected(self):
        qubits = cirq.LineQubit.range(1)
        circuit = cirq.Circuit(
            channels.amplitude_damp(0.2).on(qubits[0]),
            cirq.measure(*qubits, key="z"),
        )
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=7,
        )
        with pytest.raises(ValueError, match="Clifford|channels"):
            sim.sample_bitstrings(circuit, repetitions=2)


class TestDenseStateFallback:
    def test_pauli_noise_apply_op_on_dense_state(self):
        """The same apply_op works on a dense backend (generic unitary path)."""
        from repro.states import StateVectorSimulationState

        n = 2
        qubits = cirq.LineQubit.range(n)
        circuit = noisy_ghz(qubits, p=0.2)
        exact = exact_diagonal(circuit, qubits)
        sim = Simulator(
            initial_state=StateVectorSimulationState(qubits),
            apply_op=act_on_with_pauli_noise,
            compute_probability=born.compute_probability_state_vector,
            seed=4,
        )
        bits = sim.sample_bitstrings(circuit, repetitions=3000)
        tv = 0.5 * np.abs(histogram(bits, n) - exact).sum()
        assert tv < 0.05


class TestNoisyNearClifford:
    def test_noisy_t_circuit_runs_and_is_close(self):
        """Clifford+T with depolarizing noise through the full stack."""
        n = 2
        qubits = cirq.LineQubit.range(n)
        circuit = cirq.Circuit(
            cirq.H.on(qubits[0]),
            cirq.T.on(qubits[0]),
            channels.depolarize(0.1).on(qubits[0]),
            cirq.CNOT.on(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="z"),
        )
        exact = exact_diagonal(circuit, qubits)
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_near_clifford_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=8,
        )
        reps = 6000
        bits = sim.sample_bitstrings(circuit, repetitions=reps)
        tv = 0.5 * np.abs(histogram(bits, n) - exact).sum()
        # Sum-over-Cliffords adds systematic branch noise on top of
        # sampling noise; the distribution must still be recognizably close.
        assert tv < 0.15

    def test_pure_clifford_path_unaffected(self):
        qubits = cirq.LineQubit.range(2)
        circuit = cirq.Circuit(
            cirq.H.on(qubits[0]),
            cirq.CNOT.on(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="z"),
        )
        sim = Simulator(
            initial_state=StabilizerChFormSimulationState(qubits),
            apply_op=act_on_near_clifford_with_pauli_noise,
            compute_probability=born.compute_probability_stabilizer_state,
            seed=9,
        )
        rows = {
            tuple(r)
            for r in sim.run(circuit, repetitions=300).measurements["z"]
        }
        assert rows == {(0, 0), (1, 1)}
