"""Tests for run_sweep and Circuit.with_noise."""

import math

import numpy as np
import pytest

import repro as bgls
from repro import born
from repro import circuits as cirq
from repro.analysis import empirical_distribution, total_variation_distance


@pytest.fixture
def qubits():
    return cirq.LineQubit.range(2)


class TestRunSweep:
    def test_sweep_returns_one_result_per_resolver(self, qubits):
        theta = cirq.Symbol("theta")
        circuit = cirq.Circuit(
            cirq.Rx(theta).on(qubits[0]), cirq.measure(qubits[0], key="m")
        )
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        results = sim.run_sweep(
            circuit,
            params=[{"theta": 0.0}, {"theta": math.pi}],
            repetitions=50,
        )
        assert len(results) == 2
        assert results[0].histogram("m") == {0: 50}
        assert results[1].histogram("m") == {1: 50}

    def test_sweep_with_param_resolver_objects(self, qubits):
        theta = cirq.Symbol("t")
        circuit = cirq.Circuit(
            cirq.Ry(theta).on(qubits[0]), cirq.measure(qubits[0], key="m")
        )
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=1,
        )
        resolvers = [cirq.ParamResolver({"t": v}) for v in (0.3, 1.2, 2.9)]
        results = sim.run_sweep(circuit, resolvers, repetitions=600)
        for resolver, result in zip(resolvers, results):
            angle = resolver.value_of(cirq.Symbol("t"))
            expected = math.sin(angle / 2) ** 2
            assert abs(result.measurements["m"].mean() - expected) < 0.07


class TestWithNoise:
    def test_inserts_channels_after_each_moment(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]), cirq.CNOT(qubits[0], qubits[1])
        )
        noisy = circuit.with_noise(cirq.depolarize(0.01))
        n_channels = sum(
            1
            for op in noisy.all_operations()
            if isinstance(op.gate, cirq.DepolarizingChannel)
        )
        assert n_channels == 2 * len(qubits)
        assert not noisy.is_unitary_circuit()

    def test_measurement_moment_left_clean(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]), cirq.measure(*qubits, key="m")
        )
        noisy = circuit.with_noise(cirq.bit_flip(0.1))
        # noise after the H moment only, not after the measurement
        n_channels = sum(
            1
            for op in noisy.all_operations()
            if isinstance(op.gate, cirq.BitFlipChannel)
        )
        assert n_channels == len(qubits)

    def test_factory_callable(self, qubits):
        circuit = cirq.Circuit(cirq.H(qubits[0]))
        noisy = circuit.with_noise(lambda: cirq.phase_flip(0.2))
        assert any(
            isinstance(op.gate, cirq.PhaseFlipChannel)
            for op in noisy.all_operations()
        )

    def test_zero_noise_preserves_distribution(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="m"),
        )
        noisy = circuit.with_noise(cirq.depolarize(0.0))
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        emp = empirical_distribution(
            sim.run(noisy, repetitions=1500).measurements["m"], 2
        )
        np.testing.assert_allclose(emp, [0.5, 0, 0, 0.5], atol=0.05)

    def test_strong_noise_mixes_ghz(self, qubits):
        """Depolarizing noise must populate the 01/10 outcomes."""
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="m"),
        )
        noisy = circuit.with_noise(cirq.depolarize(0.3))
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=0,
        )
        emp = empirical_distribution(
            sim.run(noisy, repetitions=1500).measurements["m"], 2
        )
        assert emp[1] + emp[2] > 0.1

    def test_noisy_sampling_matches_density_matrix(self, qubits):
        circuit = cirq.Circuit(
            cirq.H(qubits[0]),
            cirq.CNOT(qubits[0], qubits[1]),
            cirq.measure(*qubits, key="m"),
        )
        noisy = circuit.with_noise(cirq.amplitude_damp(0.15))
        dm = bgls.DensityMatrixSimulationState(qubits)
        for op in noisy.without_measurements().all_operations():
            bgls.act_on(op, dm)
        exact = dm.diagonal_probabilities()
        sim = bgls.Simulator(
            bgls.StateVectorSimulationState(qubits),
            bgls.act_on,
            born.compute_probability_state_vector,
            seed=3,
        )
        emp = empirical_distribution(
            sim.run(noisy, repetitions=3000).measurements["m"], 2
        )
        assert total_variation_distance(emp, exact) < 0.05
