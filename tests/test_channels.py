"""Tests for noise channels: Kraus completeness and semantics."""

import numpy as np
import pytest

from repro.circuits import (
    amplitude_damp,
    bit_flip,
    depolarize,
    phase_damp,
    phase_flip,
)
from repro.protocols import has_kraus, is_channel, kraus


ALL_CHANNELS = [
    bit_flip(0.1),
    phase_flip(0.2),
    depolarize(0.3),
    amplitude_damp(0.4),
    phase_damp(0.5),
]


@pytest.mark.parametrize("channel", ALL_CHANNELS)
def test_kraus_completeness(channel):
    """sum_k K^dag K = I (trace preservation)."""
    total = sum(k.conj().T @ k for k in kraus(channel))
    np.testing.assert_allclose(total, np.eye(2), atol=1e-12)


@pytest.mark.parametrize("channel", ALL_CHANNELS)
def test_channel_classification(channel):
    assert has_kraus(channel)
    assert is_channel(channel)
    assert channel._unitary_() is None


@pytest.mark.parametrize("factory", [bit_flip, phase_flip, depolarize])
def test_probability_validation(factory):
    with pytest.raises(ValueError):
        factory(-0.1)
    with pytest.raises(ValueError):
        factory(1.1)


def test_bit_flip_zero_probability_is_identity():
    ks = kraus(bit_flip(0.0))
    np.testing.assert_allclose(ks[0], np.eye(2), atol=1e-12)
    np.testing.assert_allclose(ks[1], np.zeros((2, 2)), atol=1e-12)


def test_bit_flip_effect_on_density_matrix():
    """rho = |0><0| under bit flip p: diag(1-p, p)."""
    p = 0.3
    rho = np.diag([1.0, 0.0]).astype(complex)
    out = sum(k @ rho @ k.conj().T for k in kraus(bit_flip(p)))
    np.testing.assert_allclose(np.diag(out).real, [1 - p, p], atol=1e-12)


def test_depolarize_fully_mixes():
    """p=3/4 depolarizing on any pure state gives the maximally mixed state."""
    rho = np.array([[1, 1], [1, 1]], dtype=complex) / 2  # |+><+|
    out = sum(k @ rho @ k.conj().T for k in kraus(depolarize(0.75)))
    np.testing.assert_allclose(out, np.eye(2) / 2, atol=1e-12)


def test_amplitude_damp_fixed_point():
    """|0><0| is a fixed point of amplitude damping."""
    rho = np.diag([1.0, 0.0]).astype(complex)
    out = sum(k @ rho @ k.conj().T for k in kraus(amplitude_damp(0.9)))
    np.testing.assert_allclose(out, rho, atol=1e-12)


def test_amplitude_damp_decays_excited_state():
    g = 0.4
    rho = np.diag([0.0, 1.0]).astype(complex)
    out = sum(k @ rho @ k.conj().T for k in kraus(amplitude_damp(g)))
    np.testing.assert_allclose(np.diag(out).real, [g, 1 - g], atol=1e-12)


def test_phase_damp_kills_coherences_not_populations():
    g = 0.5
    rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
    out = sum(k @ rho @ k.conj().T for k in kraus(phase_damp(g)))
    np.testing.assert_allclose(np.diag(out).real, [0.5, 0.5], atol=1e-12)
    assert abs(out[0, 1]) < 0.5


def test_channel_equality():
    assert bit_flip(0.1) == bit_flip(0.1)
    assert bit_flip(0.1) != bit_flip(0.2)
    assert bit_flip(0.1) != phase_flip(0.1)


def test_channels_are_single_qubit():
    for channel in ALL_CHANNELS:
        assert channel.num_qubits() == 1
